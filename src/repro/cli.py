"""Command-line interface: ``mctop`` (or ``python -m repro``).

Mirrors the workflow of the real libmctop tool: run the inference once
(``infer``), store a description file, then ``show``/``dot``/``place``
against either a stored topology or a catalog machine.

Examples
--------
::

    mctop list
    mctop infer ivy --seed 1 --out ivy.mct
    mctop infer testbox --trace out.json     # + Chrome trace_event file
    mctop show ivy.mct
    mctop dot opteron --view cross
    mctop place ivy.mct --policy CON_HWC --threads 30
    mctop validate opteron
    mctop trace testbox                      # observability report
    mctop trace out.json                     # report from a saved trace
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import MctopError


def _table_config(args: argparse.Namespace):
    """The measurement config the common CLI flags describe.

    Routed through :meth:`LatencyTableConfig.from_dict` so the CLI and
    the service share one parsing/validation path.
    """
    from repro.core.algorithm import LatencyTableConfig

    doc = {"repetitions": args.repetitions}
    if getattr(args, "jobs", 1) != 1:
        doc["jobs"] = args.jobs
    if getattr(args, "sampling", "auto") != "auto":
        doc["sampling"] = args.sampling
    return LatencyTableConfig.from_dict(doc)


def _load_topology(args: argparse.Namespace, target: str):
    """A topology from a .mct file or by inferring a catalog machine."""
    from repro import infer
    from repro.core.serialize import load_mctop
    from repro.hardware import machine_names

    if Path(target).suffix == ".mct" or Path(target).is_file():
        return load_mctop(target)
    if target in machine_names() or target.startswith("synth:"):
        return infer(target, seed=args.seed, table=_table_config(args))
    raise MctopError(
        f"{target!r} is neither a description file nor a catalog machine "
        f"(known machines: {', '.join(machine_names())}; "
        "synth:<seed> generates one)"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.hardware import get_machine, machine_names

    for name in machine_names():
        print(get_machine(name).describe())
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro import infer, save_mctop
    from repro.core.algorithm import InferenceReport

    report = InferenceReport()
    mctop = infer(
        args.machine, seed=args.seed, table=_table_config(args),
        report=report,
    )
    print(mctop.summary())
    print(f"samples taken : {report.samples_taken}")
    if report.os_comparison is not None:
        print(report.os_comparison.report())
    if args.out:
        path = save_mctop(mctop, args.out)
        print(f"description written to {path}")
    if args.trace:
        path = report.obs.write_chrome_trace(args.trace)
        print(f"trace written to {path} (open with chrome://tracing "
              "or https://ui.perfetto.dev)")
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    """Fetch a retained per-request trace from a daemon or router."""
    import json

    from repro.obs import render_timeline, timeline_to_chrome
    from repro.service import MctopClient

    if args.rid is None:
        raise MctopError(
            "trace show needs a REQUEST_ID (grab one from the /metrics "
            "exemplars, mctop top's slowest-requests panel, or "
            "client.last_request_ids)"
        )
    if args.unix is None and args.host is None:
        raise MctopError("trace show needs --unix PATH or --host HOST")
    with MctopClient(unix_path=args.unix, host=args.host, port=args.port,
                     timeout=args.timeout) as client:
        result = client.trace(args.rid)
    if not result.get("enabled"):
        raise MctopError("the daemon runs without a trace store "
                         "(started with --no-trace-store)")
    if not result.get("found"):
        raise MctopError(
            f"no retained trace for request {args.rid!r} "
            "(evicted, expired, or finished before tracing was on)"
        )
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
    else:
        print(render_timeline(result))
    if args.chrome:
        path = Path(args.chrome)
        path.write_text(
            json.dumps(timeline_to_chrome(result), indent=1,
                       sort_keys=True) + "\n"
        )
        print(f"Chrome trace written to {path} (open with chrome://tracing "
              "or https://ui.perfetto.dev)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a traced inference (or summarize a saved trace file, or show
    a retained per-request trace from a running daemon)."""
    import json

    from repro import infer
    from repro.core.algorithm import InferenceReport
    from repro.hardware import machine_names

    if args.target == "show":
        return _cmd_trace_show(args)

    target = Path(args.target)
    if target.is_file():
        # Standalone report printer for a saved Chrome trace.
        try:
            doc = json.loads(target.read_text())
            events = doc["traceEvents"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise MctopError(f"cannot read trace file {target}: {exc}")
        spans = [e for e in events if e.get("ph") == "X"]
        counters = [e for e in events if e.get("ph") == "C"]
        print(f"trace {target}: {len(events)} events")
        print("spans:")
        for e in sorted(spans, key=lambda e: e["ts"]):
            print(f"  {e['name']:<44}{e.get('dur', 0.0) / 1000.0:10.3f} ms")
        if counters:
            print("counters:")
            for e in counters:
                print(f"  {e['name']:<44}{e['args']['value']}")
        return 0

    if args.target not in machine_names():
        raise MctopError(
            f"{args.target!r} is neither a trace file nor a catalog machine "
            f"(known machines: {', '.join(machine_names())})"
        )
    report = InferenceReport()
    infer(args.target, seed=args.seed, table=_table_config(args),
          report=report)
    print(report.obs.report())
    if args.out:
        path = report.obs.write_chrome_trace(args.out)
        print(f"trace written to {path}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    mctop = _load_topology(args, args.target)
    print(mctop.summary())
    if args.ascii:
        from repro.core.viz import topology_ascii

        print(topology_ascii(mctop))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.core.viz import cross_socket_dot, intra_socket_dot

    mctop = _load_topology(args, args.target)
    if args.view in ("intra", "both"):
        print(intra_socket_dot(mctop))
    if args.view in ("cross", "both"):
        print(cross_socket_dot(mctop))
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from repro.place import Placement

    mctop = _load_topology(args, args.target)
    placement = Placement(
        mctop, args.policy, n_threads=args.threads, n_sockets=args.sockets
    )
    print(placement.print_stats())
    return 0


def _cmd_revalidate(args: argparse.Namespace) -> int:
    """Check a stored description against the live machine (cheaply)."""
    from repro.core.algorithm.changes import detect_changes
    from repro.core.serialize import load_mctop
    from repro.hardware import MeasurementContext, get_machine

    mctop = load_mctop(args.description)
    probe = MeasurementContext(get_machine(args.machine), seed=args.seed)
    report = detect_changes(mctop, probe)
    print(report.summary())
    return 0 if report.topology_still_valid else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    """Semantic drift diff between two topologies (files or machines)."""
    import json

    from repro.obs.diff import DriftThresholds, compare_mctops

    thresholds = None
    if args.threshold_warn is not None or args.threshold_critical is not None:
        warn = args.threshold_warn if args.threshold_warn is not None \
            else 0.10
        critical = args.threshold_critical \
            if args.threshold_critical is not None else 0.30
        thresholds = DriftThresholds.uniform(warn, critical)
    a = _load_topology(args, args.a)
    b = _load_topology(args, args.b)
    report = compare_mctops(a, b, thresholds)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro import infer
    from repro.core.algorithm import InferenceReport

    report = InferenceReport()
    infer(args.machine, seed=args.seed, table=_table_config(args),
          report=report)
    print(report.os_comparison.report())
    return 0 if report.os_comparison.all_match else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time cold inference across measurement-engine modes."""
    import json

    from repro.benchmark import run_bench, run_fuzz_bench
    from repro.obs.history import (
        compare_bench,
        load_baseline,
        render_verdict_table,
    )

    if args.replay is not None:
        if args.compare is None:
            raise MctopError("--replay only makes sense with --compare")
        try:
            doc = json.loads(Path(args.replay).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise MctopError(
                f"cannot read bench document {args.replay}: {exc}"
            ) from None
    elif args.fuzz:
        out = args.out
        if out == "BENCH_3.json":  # keep the inference bench snapshot
            out = "BENCH_FUZZ.json"
        history = args.history
        if history is None and not args.no_history:
            history = str(Path(out).with_name("BENCH_HISTORY.jsonl"))
        doc = run_fuzz_bench(
            count=args.fuzz_count,
            seed=args.seed,
            jobs=args.jobs,
            quick=args.quick,
            repetitions=args.repetitions,
            out=out,
            progress=print,
            history=None if args.no_history else history,
        )
        print(f"bench written to {out}")
        stats = doc["machines"][0]["modes"]["fuzz"]
        print(f"fuzz: {args.fuzz_count} machines in "
              f"{stats['wall_seconds']}s "
              f"({stats['machines_per_sec']} machines/s, "
              f"{stats['samples_per_sec']:,} samples/s)")
        if not doc["fuzz_ok"]:
            print("error: fuzz cases failed during the bench",
                  file=sys.stderr)
            return 1
    else:
        machines = args.machines.split(",") if args.machines else None
        history = args.history
        if history is None and not args.no_history:
            history = str(Path(args.out).with_name("BENCH_HISTORY.jsonl"))
        try:
            doc = run_bench(
                machines=machines,
                repetitions=args.repetitions,
                seed=args.seed,
                jobs=args.jobs,
                quick=args.quick,
                out=args.out,
                progress=print,
                history=None if args.no_history else history,
            )
        except ValueError as exc:
            raise MctopError(str(exc)) from None
        print(f"bench written to {args.out}")
        for entry in doc["machines"]:
            print(f"{entry['machine']:>10}: "
                  f"batched {entry['batched_speedup']}x, "
                  f"jobs {entry['jobs_speedup']}x vs scalar "
                  f"({entry['n_contexts']} contexts)")
        if not doc["all_topologies_identical"]:
            print("error: modes produced diverging topologies",
                  file=sys.stderr)
            return 1
        if not doc["all_batched_faster"]:
            print("error: batched mode slower than scalar", file=sys.stderr)
            return 1

    if args.compare is not None:
        try:
            baseline = load_baseline(args.compare)
            comparison = compare_bench(
                doc, baseline,
                metric=args.compare_metric,
                threshold=args.threshold,
            )
        except (OSError, ValueError) as exc:
            raise MctopError(str(exc)) from None
        print(render_verdict_table(comparison))
        if not comparison["ok"]:
            return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Property-based fuzzing: generated machines through the full
    measure → infer → compare loop (see docs/FUZZING.md)."""
    import json

    from repro.fuzz import run_fuzz, run_spec_case, shrink_spec
    from repro.fuzz.shrink import promote_spec
    from repro.hardware.synth import SynthParams, generate_spec

    def on_case(case: dict) -> None:
        verdict = "ok" if case["ok"] else "FAIL"
        print(f"  synth:{case['seed']:<7} {case['n_contexts']:>3} ctx "
              f"{case['n_sockets']}s x {case['cores_per_socket']}c "
              f"x {case['smt_per_core']}t {case['interconnect']:>10} "
              f"{case['wall_seconds']:7.2f}s  {verdict}")
        for violation in case["violations"]:
            print(f"    violation: {violation}")

    doc = run_fuzz(
        count=args.count,
        seed=args.seed,
        repetitions=args.repetitions,
        jobs=args.jobs,
        quick=args.quick,
        artifacts_dir=args.artifacts,
        progress=None if args.json else on_case,
    )
    if args.out:
        Path(args.out).write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        verdict = "ok" if doc["ok"] else (
            f"{len(doc['failures'])} of {doc['count']} cases FAILED "
            f"({doc['n_violations']} violations)"
        )
        print(f"fuzz: {doc['count']} machines from seed {doc['seed']} "
              f"at {doc['repetitions']} repetitions: {verdict}")
        print(f"digest        : {doc['digest']}")
        print(f"throughput    : {doc['machines_per_sec']} machines/s "
              f"({doc['wall_seconds']}s, jobs={doc['jobs']})")
        if args.out:
            print(f"report written to {args.out}")
        if args.artifacts and doc["failures"]:
            print(f"failing specs written to {args.artifacts}/")

    if doc["failures"] and args.shrink:
        params = SynthParams.quick() if args.quick else SynthParams()
        spec = generate_spec(doc["failures"][0], params)
        reps = doc["repetitions"]

        def still_fails(candidate) -> bool:
            return not run_spec_case(candidate, repetitions=reps)["ok"]

        print(f"shrinking failing seed {spec.seed} "
              f"({spec.n_contexts} contexts)...")
        result = shrink_spec(spec, still_fails)
        print(f"shrunk to {result.spec.n_contexts} contexts in "
              f"{result.evals} evals via {' -> '.join(result.steps) or '-'}")
        target = args.artifacts or "."
        path = promote_spec(result.spec, target,
                            stem=f"shrunk-{spec.seed}")
        print(f"minimal failing spec written to {path}")

    return 0 if doc["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the mctopd topology-and-placement daemon until SIGTERM."""
    from repro.service import ServeConfig, run_daemon

    if args.unix is None and args.host is None:
        raise MctopError("serve needs --unix PATH and/or --host HOST")
    config = ServeConfig(
        unix_path=args.unix,
        host=args.host,
        port=args.port,
        store_dir=args.store,
        max_memory_entries=args.cache_entries,
        default_repetitions=args.repetitions,
        request_timeout=args.timeout,
        max_pending=args.max_pending,
        drain_timeout=args.drain_timeout,
        metrics_port=args.metrics_port,
        metrics_host=args.metrics_host,
        access_log=args.access_log,
        event_log=args.event_log,
        watch_interval=args.watch_interval,
        watch_machines=tuple(
            m.strip() for m in (args.watch_machines or "").split(",")
            if m.strip()
        ),
        watch_repetitions=args.watch_repetitions,
        watch_seed=args.watch_seed,
        member_id=args.member_id,
        peers=tuple(args.peer or ()),
        peer_timeout=args.peer_timeout,
        peer_fanout=args.peer_fanout,
        placement_index=not args.no_placement_index,
        trace_store=not args.no_trace_store,
        trace_max_traces=args.trace_max_traces,
        trace_max_bytes=args.trace_max_bytes,
        trace_ttl=args.trace_ttl,
        trace_sample_every=args.trace_sample_every,
        slo=not args.no_slo,
        slo_objectives=tuple(args.slo_objective or ()),
        profile=args.profile,
        profile_hz=args.profile_hz,
        profile_max_bytes=args.profile_max_bytes,
    )
    if config.watch_interval is not None and not config.watch_machines:
        raise MctopError("--watch-interval needs --watch-machines M1,M2,...")
    if config.slo_objectives:
        # Validate here so a typo dies with a usage error, not a
        # traceback from inside the daemon's startup.
        from repro.obs.slo import parse_objectives

        try:
            parse_objectives(config.slo_objectives)
        except ValueError as exc:
            raise MctopError(str(exc)) from None

    def announce(daemon) -> None:
        if args.unix is not None:
            print(f"mctopd listening on unix:{args.unix}", flush=True)
        if args.host is not None:
            print(f"mctopd listening on tcp:{args.host}:{daemon.tcp_port}",
                  flush=True)
        if daemon.bound_metrics_port is not None:
            print(f"metrics on http://{args.metrics_host}:"
                  f"{daemon.bound_metrics_port}/metrics", flush=True)
        if args.access_log is not None:
            print(f"access log at {args.access_log}", flush=True)
        if args.event_log is not None:
            print(f"event log at {args.event_log}", flush=True)
        if daemon.watcher is not None:
            print(f"drift watcher every {args.watch_interval}s on "
                  f"{', '.join(daemon.watcher.states)}", flush=True)
        if config.peers:
            print(f"member {config.member_id or '(unnamed)'} peering "
                  f"with {', '.join(config.peers)}", flush=True)
        if config.profile:
            print(f"profiler sampling at {config.profile_hz:g}Hz",
                  flush=True)

    run_daemon(config, ready_callback=announce)
    print("mctopd drained, bye")
    return 0


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    """Run a fleet router (optionally spawning its members in-process)."""
    from repro.fleet import FleetServeConfig, run_fleet

    if args.unix is None and args.host is None:
        raise MctopError("fleet serve needs --unix PATH and/or --host HOST")
    if not args.members and not args.member:
        raise MctopError(
            "fleet serve needs --members N (spawn in-process) and/or "
            "--member ENDPOINT (front an external mctopd)"
        )
    config = FleetServeConfig(
        state_dir=args.state_dir,
        n_members=args.members,
        members=tuple(args.member or ()),
        unix_path=args.unix,
        host=args.host,
        port=args.port,
        request_timeout=args.timeout,
        max_pending=args.max_pending,
        drain_timeout=args.drain_timeout,
        default_repetitions=args.repetitions,
        health_interval=args.health_interval,
        probe_timeout=args.probe_timeout,
        fail_threshold=args.fail_threshold,
        access_log=args.access_log,
        event_log=args.event_log,
    )

    def announce(router, daemons) -> None:
        for daemon in daemons:
            print(f"member {daemon.config.member_id} listening on "
                  f"unix:{daemon.config.unix_path}", flush=True)
        if args.unix is not None:
            print(f"fleet router listening on unix:{args.unix}", flush=True)
        if args.host is not None:
            print(f"fleet router listening on "
                  f"tcp:{args.host}:{router.tcp_port}", flush=True)
        print(f"fleet: {len(router.health.ring)}/"
              f"{len(router.health.states)} members in ring", flush=True)

    run_fleet(config, ready_callback=announce)
    print("fleet drained, bye")
    return 0


def _render_fleet(result: dict) -> str:
    """Human text for the router's ``fleet`` verb document."""
    lines = [
        f"fleet: {result.get('in_ring', 0)}/{result.get('total', 0)} "
        f"members in ring, {result.get('rebalances', 0)} rebalances "
        f"(health every {result.get('interval', 0):g}s, eject after "
        f"{result.get('fail_threshold', 0)} failures)"
    ]
    for member_id, state in sorted(result.get("members", {}).items()):
        severity = state.get("drift_severity") or "-"
        error = state.get("last_error")
        lines.append(
            f"  {member_id:<12} {state.get('status', 'unknown'):<9} "
            f"{state.get('endpoint', ''):<32} drift={severity:<9} "
            f"checks={state.get('checks', 0)}"
            + (f"  last_error={error}" if error else "")
        )
    ring = result.get("ring", {})
    lines.append(
        f"ring: {', '.join(ring.get('members', [])) or '(empty)'} "
        f"({ring.get('replicas', 0)} replicas per member)"
    )
    return "\n".join(lines)


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """The router's membership/ring/health document."""
    import json

    from repro.service import MctopClient

    if args.unix is None and args.host is None:
        raise MctopError("fleet status needs --unix PATH or --host HOST")
    with MctopClient(unix_path=args.unix, host=args.host, port=args.port,
                     timeout=args.timeout) as client:
        result = client.request("fleet")
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
    else:
        print(_render_fleet(result))
    return 0


def _render_drift(result: dict) -> str:
    """Human text for the ``drift`` verb's status document."""
    if not result.get("enabled"):
        return "drift watcher: disabled (daemon started without --watch-*)"
    lines = [
        f"drift watcher: worst={result['worst_severity']} "
        f"interval={result['interval']:g}s"
    ]
    for name, state in sorted(result.get("machines", {}).items()):
        age = state.get("age_seconds")
        age_text = f"{age:.1f}s ago" if age is not None else "never"
        lines.append(
            f"  {name:<12} {state['severity']:<9} "
            f"checks={state['checks']:<4} last={age_text}"
        )
        report = state.get("report")
        for finding in (report or {}).get("findings", []):
            lines.append(f"    [{finding['severity']:>8}] "
                         f"{finding['category']}: {finding['message']}")
    return "\n".join(lines)


def _cmd_query(args: argparse.Namespace) -> int:
    """One request against a running mctopd."""
    import json

    from repro.service import MctopClient

    if args.unix is None and args.host is None:
        raise MctopError("query needs --unix PATH or --host HOST")
    params: dict = {}
    if args.verb == "drift":
        # The drift verb takes an optional machine and no measurement
        # knobs (the watcher owns its own quick config).
        if args.machine is not None:
            params["machine"] = args.machine
    elif args.verb == "trace":
        # The positional argument is the request id, not a machine.
        if args.machine is None:
            raise MctopError("query trace needs a REQUEST_ID argument")
        params["request_id"] = args.machine
    elif args.verb == "slo":
        pass  # no parameters: the engine's whole status document
    elif args.verb == "profile":
        # The optional positional argument is a request id (use the
        # richer `mctop profile` subcommand for verb filters/exports).
        if args.machine is not None:
            params["request_id"] = args.machine
    elif args.machine is not None:
        params["machine"] = args.machine
        params["seed"] = args.seed
        params["repetitions"] = args.repetitions
        if args.jobs != 1:
            params["jobs"] = args.jobs
    elif args.verb in ("infer", "show", "place", "place_many",
                       "pool_switch", "validate"):
        raise MctopError(f"query {args.verb} needs a MACHINE argument")
    if args.verb in ("place", "pool_switch"):
        params["policy"] = args.policy
        if args.threads is not None:
            params["threads"] = args.threads
        if args.sockets is not None:
            params["sockets"] = args.sockets
    elif args.verb == "place_many":
        queries_json = getattr(args, "queries", None)
        if queries_json is not None:
            try:
                queries = json.loads(queries_json)
            except json.JSONDecodeError as exc:
                raise MctopError(f"--queries is not JSON: {exc}") from None
            if not isinstance(queries, list):
                raise MctopError("--queries must be a JSON list of "
                                 "{policy, threads, sockets} objects")
        else:
            # Without --queries, a batch of one from the place flags.
            query = {"policy": args.policy}
            if args.threads is not None:
                query["threads"] = args.threads
            if args.sockets is not None:
                query["sockets"] = args.sockets
            queries = [query]
        params["queries"] = queries
    prom = args.verb == "metrics" and args.format in ("prom", "prometheus")
    if prom:
        params["format"] = "prometheus"
    elif args.format != "json" and args.verb != "metrics":
        raise MctopError("--format applies to the metrics verb only")

    with MctopClient(unix_path=args.unix, host=args.host, port=args.port,
                     timeout=args.timeout) as client:
        result = client.request(args.verb, **params)

    if prom:
        print(result["prometheus"], end="")
        return 0
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
        return 0
    if args.verb == "drift":
        print(_render_drift(result))
        return 0
    if args.verb == "trace":
        from repro.obs import render_timeline

        if not result.get("enabled"):
            print("trace store: disabled (daemon started with "
                  "--no-trace-store)")
            return 1
        if not result.get("found"):
            print(f"no retained trace for request {params['request_id']!r}")
            return 1
        print(render_timeline(result))
        return 0
    if args.verb == "slo":
        from repro.service.top import render_slo_lines

        lines = render_slo_lines(result)
        if not lines:
            print("slo engine: disabled (daemon started with --no-slo)")
            return 1
        print("\n".join(lines))
        return 0
    if args.verb == "profile":
        from repro.service.top import render_profile_lines

        lines = render_profile_lines(result, top=10)
        if not lines:
            print("profiler: disabled (daemon started without --profile)")
            return 1
        print("\n".join(lines))
        return 0
    for text_key in ("summary", "stats", "report"):
        if text_key in result:
            print(result.pop(text_key))
    for key in sorted(result):
        print(f"{key:<22}: {result[key]}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard against a running mctopd."""
    from repro.service import MctopClient
    from repro.service.top import run_top

    if args.unix is None and args.host is None:
        raise MctopError("top needs --unix PATH or --host HOST")
    with MctopClient(unix_path=args.unix, host=args.host, port=args.port,
                     timeout=args.timeout) as client:
        return run_top(
            client,
            interval=args.interval,
            count=args.count,
            clear=not args.no_clear,
            fleet=args.fleet,
        )


def _cmd_profile(args: argparse.Namespace) -> int:
    """Inspect (or reset/export) a daemon's continuous profile."""
    import json

    from repro.obs.profiler import collapsed_stacks, speedscope_doc
    from repro.service import MctopClient
    from repro.service.top import render_profile_lines

    if args.unix is None and args.host is None:
        raise MctopError("profile needs --unix PATH or --host HOST")
    with MctopClient(unix_path=args.unix, host=args.host, port=args.port,
                     timeout=args.timeout) as client:
        if args.profile_command == "reset":
            result = client.profile(action="reset")
            if not result.get("enabled"):
                raise MctopError(
                    "the daemon runs without --profile; nothing to reset"
                )
            print("profiler reset")
            return 0
        params: dict = {"limit": args.limit}
        if args.verb is not None:
            params["verb"] = args.verb
        if args.request is not None:
            params["request_id"] = args.request
        result = client.profile(**params)

    if not result.get("enabled"):
        print("profiler: disabled (daemon started without --profile)")
        return 1
    if args.request is not None and not result.get("found"):
        print(f"no profiled samples for request {args.request!r} "
              "(too fast to be sampled, or evicted)")
        return 1
    wrote = False
    if getattr(args, "collapsed", None):
        Path(args.collapsed).write_text(collapsed_stacks(result))
        print(f"collapsed stacks written to {args.collapsed} "
              "(flamegraph.pl input)")
        wrote = True
    if getattr(args, "speedscope", None):
        name = f"mctop profile ({args.request})" if args.request \
            else "mctop profile"
        Path(args.speedscope).write_text(
            json.dumps(speedscope_doc(result, name=name), indent=1,
                       sort_keys=True) + "\n"
        )
        print(f"speedscope profile written to {args.speedscope} "
              "(open at https://www.speedscope.app)")
        wrote = True
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
        return 0
    if args.profile_command == "top":
        print("\n".join(render_profile_lines(result, top=args.limit)))
        return 0
    if wrote:
        return 0
    # show: header plus one collapsed line per stack, heaviest first.
    header = render_profile_lines(result, top=0)[0]
    if args.request is not None:
        header += f"  request {result.get('request_id', args.request)}"
    print(header)
    for entry in result.get("stacks") or []:
        stack = entry.get("stack") or []
        verb = entry.get("verb")
        tag = f" [{verb}]" if verb else ""
        print(f"  {entry.get('count', 0):>7}{tag}  {';'.join(stack)}")
    return 0


def _cmd_events_tail(args: argparse.Namespace) -> int:
    """Filtered view of a rotating NDJSON event log, tail -f style."""
    import json
    import time as _time

    from repro.obs.events import (
        follow_log_records,
        iter_log_records,
        log_segments,
    )

    if not log_segments(args.path):
        raise MctopError(f"no event log at {args.path}")

    def _show(record: dict) -> None:
        if args.json:
            print(json.dumps(record, sort_keys=True), flush=True)
            return
        ts = record.get("ts")
        when = _time.strftime("%H:%M:%S", _time.localtime(ts)) \
            if isinstance(ts, (int, float)) else "--:--:--"
        rid = record.get("request_id") or "-"
        rest = " ".join(
            f"{key}={record[key]}" for key in sorted(record)
            if key not in ("ts", "kind", "request_id")
        )
        print(f"{when}  {record.get('kind', '?'):<22} {rid:<18} "
              f"{rest}".rstrip(), flush=True)

    records = list(iter_log_records(args.path, kind=args.kind,
                                    request_id=args.request))
    if args.lines > 0:
        records = records[-args.lines:]
    for record in records:
        _show(record)
    if args.follow:
        try:
            for record in follow_log_records(args.path, kind=args.kind,
                                             request_id=args.request):
                _show(record)
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load generation against mctopd (docs/PLACEMENT.md)."""
    import json

    from repro.obs.history import (
        append_history,
        compare_bench,
        load_baseline,
        render_verdict_table,
    )
    from repro.service.client import MctopClient
    from repro.service.loadgen import (
        LoadgenConfig,
        SelfHostedDaemon,
        collect_exemplar_traces,
        collect_profile,
        loadgen_bench_doc,
        parse_mix,
        render_loadgen_report,
        run_loadgen,
    )

    config = LoadgenConfig(
        machine=args.machine,
        duration=args.duration,
        rate=args.rate,
        batch=args.batch,
        workers=args.workers,
        mix=parse_mix(args.mix),
        include_stats=args.include_stats,
        seed=args.seed,
        repetitions=args.repetitions,
    )

    trace_doc: dict | None = None
    profile_doc: dict | None = None
    want_profile = args.profile or args.profile_out is not None

    def run(unix_path: str | None, host: str | None, port: int) -> dict:
        def make_client() -> MctopClient:
            return MctopClient(unix_path=unix_path, host=host, port=port,
                               timeout=args.timeout)

        result = run_loadgen(config, make_client, progress=print)
        if args.trace_out:
            # Collected before the daemon (and its trace store) goes
            # away, so the artifact carries the run's actual slowest
            # requests.
            nonlocal trace_doc
            trace_doc = collect_exemplar_traces(make_client)
        if args.profile_out:
            # Same lifetime rule: snapshot the profiler before the
            # self-hosted daemon is torn down.
            nonlocal profile_doc
            profile_doc = collect_profile(make_client)
        return result

    if args.unix is None and args.host is None:
        # Self-contained run: a throwaway in-process daemon on a Unix
        # socket in a temp directory (what the CI smoke job uses).
        with SelfHostedDaemon(
            repetitions=args.repetitions or 31,
            profile=want_profile,
            profile_hz=args.profile_hz,
        ) as daemon:
            doc = run(daemon.unix_path, None, 0)
    else:
        doc = run(args.unix, args.host, args.port)

    print(render_loadgen_report(doc))
    if args.out:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"loadgen document written to {args.out}")
    if args.hist_out:
        target = Path(args.hist_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(doc["histogram"], indent=1, sort_keys=True) + "\n"
        )
        print(f"latency histogram written to {args.hist_out}")
    if args.trace_out and trace_doc is not None:
        target = Path(args.trace_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(trace_doc, indent=1, sort_keys=True) + "\n"
        )
        print(f"{trace_doc['count']} slowest-request traces written to "
              f"{args.trace_out}")
    if args.profile_out and profile_doc is not None:
        target = Path(args.profile_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(profile_doc, indent=1, sort_keys=True) + "\n"
        )
        inner = profile_doc.get("profile") or {}
        print(f"profile ({inner.get('samples', 0)} samples) written to "
              f"{args.profile_out}")

    bench_doc = loadgen_bench_doc(doc)
    if not args.no_history:
        history = args.history
        if history is None:
            anchor = Path(args.out) if args.out else Path("LOADGEN.json")
            history = str(anchor.with_name("BENCH_HISTORY.jsonl"))
        append_history(bench_doc, history)

    failed = False
    if doc["frame_errors"]:
        print(f"error: {doc['frame_errors']} request frames failed",
              file=sys.stderr)
        failed = True
    if doc["query_errors"]:
        print(f"error: {doc['query_errors']} placement queries returned "
              "errors", file=sys.stderr)
        failed = True
    if args.slo_p99 is not None:
        # The gate rides the same Objective definitions as the daemon's
        # burn-rate engine, so CLI and service judge latency alike.
        from repro.obs.slo import Objective, check_loadgen_slo

        objectives = (Objective("place", p99_ms=args.slo_p99),)
        for violation in check_loadgen_slo(objectives, doc):
            print(f"error: {violation}", file=sys.stderr)
            failed = True

    if args.compare is not None:
        try:
            baseline = load_baseline(args.compare)
            comparison = compare_bench(
                bench_doc, baseline,
                metric=args.compare_metric,
                threshold=args.threshold,
            )
        except (OSError, ValueError) as exc:
            raise MctopError(str(exc)) from None
        print(render_verdict_table(comparison))
        if not comparison["ok"]:
            failed = True
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mctop",
        description="MCTOP: infer, inspect and use multi-core topologies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--repetitions", type=int, default=75,
                       help="latency samples per context pair")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for latency-table "
                            "collection (> 1 switches to pair sampling)")
        p.add_argument("--sampling", choices=("auto", "sequential", "pair"),
                       default="auto",
                       help="measurement sampling scheme (auto resolves "
                            "to pair when --jobs > 1)")

    p_list = sub.add_parser("list", help="list catalog machines")
    p_list.set_defaults(func=_cmd_list)

    p_infer = sub.add_parser("infer", help="run MCTOP-ALG on a machine")
    p_infer.add_argument("machine")
    p_infer.add_argument("--out", help="write a .mct description file")
    p_infer.add_argument("--trace",
                         help="write a Chrome trace_event file of the run")
    common(p_infer)
    p_infer.set_defaults(func=_cmd_infer)

    p_show = sub.add_parser("show", help="summarize a topology")
    p_show.add_argument("target", help=".mct file or machine name")
    p_show.add_argument("--ascii", action="store_true",
                        help="also print the ASCII topology tree")
    common(p_show)
    p_show.set_defaults(func=_cmd_show)

    p_dot = sub.add_parser("dot", help="emit Graphviz DOT (Figures 1-3)")
    p_dot.add_argument("target")
    p_dot.add_argument("--view", choices=("intra", "cross", "both"),
                       default="both")
    common(p_dot)
    p_dot.set_defaults(func=_cmd_dot)

    p_place = sub.add_parser("place", help="compute a thread placement")
    p_place.add_argument("target")
    p_place.add_argument("--policy", default="CON_HWC")
    p_place.add_argument("--threads", type=int, default=None)
    p_place.add_argument("--sockets", type=int, default=None)
    common(p_place)
    p_place.set_defaults(func=_cmd_place)

    p_val = sub.add_parser("validate",
                           help="compare MCTOP against the OS topology")
    p_val.add_argument("machine")
    common(p_val)
    p_val.set_defaults(func=_cmd_validate)

    p_diff = sub.add_parser(
        "diff",
        help="semantic drift diff between two topologies; exit code "
             "0 ok / 1 warn / 2 critical",
    )
    p_diff.add_argument("a", help=".mct file or catalog machine")
    p_diff.add_argument("b", help=".mct file or catalog machine")
    p_diff.add_argument("--json", action="store_true",
                        help="print the DriftReport as JSON")
    p_diff.add_argument("--threshold-warn", type=float, default=None,
                        metavar="REL",
                        help="uniform relative warn threshold "
                             "(default 0.10)")
    p_diff.add_argument("--threshold-critical", type=float, default=None,
                        metavar="REL",
                        help="uniform relative critical threshold "
                             "(default 0.30)")
    common(p_diff)
    p_diff.set_defaults(func=_cmd_diff)

    p_reval = sub.add_parser(
        "revalidate",
        help="cheaply check a stored .mct against the live machine "
             "(detects SMT/BIOS/context changes without a full re-run)",
    )
    p_reval.add_argument("description", help=".mct file")
    p_reval.add_argument("machine", help="catalog machine to probe")
    common(p_reval)
    p_reval.set_defaults(func=_cmd_revalidate)

    p_trace = sub.add_parser(
        "trace",
        help="run a traced inference and print the observability report "
             "(or summarize a saved trace file; 'trace show REQUEST_ID' "
             "fetches a retained per-request trace from a daemon)",
    )
    p_trace.add_argument("target",
                         help="catalog machine, trace .json file, or "
                              "'show'")
    p_trace.add_argument("rid", nargs="?", metavar="REQUEST_ID",
                         help="request id for 'trace show' (from "
                              "/metrics exemplars or "
                              "client.last_request_ids)")
    p_trace.add_argument("--out", help="also write a Chrome trace_event file")
    p_trace.add_argument("--unix", help="trace show: unix socket path")
    p_trace.add_argument("--host", help="trace show: TCP host")
    p_trace.add_argument("--port", type=int, default=0,
                         help="trace show: TCP port")
    p_trace.add_argument("--timeout", type=float, default=30.0,
                         help="trace show: client-side socket timeout "
                              "(seconds)")
    p_trace.add_argument("--chrome", metavar="PATH",
                         help="trace show: also write the stitched "
                              "timeline as a Chrome trace_event file")
    p_trace.add_argument("--json", action="store_true",
                         help="trace show: print the raw trace document")
    common(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="time cold inference across the scalar/batched/jobs "
             "measurement engine modes and write BENCH_3.json",
    )
    p_bench.add_argument("--machines",
                         help="comma-separated catalog machines "
                              "(default: all)")
    p_bench.add_argument("--repetitions", type=int, default=None,
                         help="latency samples per context pair "
                              "(default: 75, or 25 with --quick)")
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the jobs mode "
                              "(default: CPU count, capped at 8)")
    p_bench.add_argument("--quick", action="store_true",
                         help="smoke-test sample counts for CI")
    p_bench.add_argument("--out", default="BENCH_3.json",
                         help="output JSON path")
    p_bench.add_argument("--history", default=None,
                         help="append-only JSONL performance history "
                              "(one record per machine+mode per run; "
                              "default: BENCH_HISTORY.jsonl next to --out)")
    p_bench.add_argument("--no-history", action="store_true",
                         help="skip the history append")
    p_bench.add_argument("--compare", metavar="BASELINE",
                         help="regression gate: diff this run against a "
                              "bench JSON or history JSONL baseline; "
                              "exits 1 on regression")
    p_bench.add_argument("--fuzz", action="store_true",
                         help="benchmark fuzz throughput (machines/sec "
                              "through generate+infer+oracle) instead of "
                              "the engine modes; writes BENCH_FUZZ.json")
    p_bench.add_argument("--fuzz-count", type=int, default=25,
                         metavar="N",
                         help="generated machines per --fuzz run "
                              "(default 25)")
    p_bench.add_argument("--compare-metric", default="speedup_vs_scalar",
                         choices=("speedup_vs_scalar", "samples_per_sec",
                                  "machines_per_sec", "wall_seconds",
                                  "place_qps", "p99_ms"),
                         help="metric the gate diffs (the default is a "
                              "same-host ratio, robust across runners)")
    p_bench.add_argument("--threshold", type=float, default=0.15,
                         help="fractional worsening tolerated before the "
                              "gate fails (default 0.15 = 15%%)")
    p_bench.add_argument("--replay", metavar="BENCH_JSON",
                         help="gate a previously saved bench document "
                              "instead of re-running the benchmark")
    p_bench.set_defaults(func=_cmd_bench)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="property-based fuzzing: generated machines through the "
             "full measure/infer/compare loop; exit 1 on any violation",
    )
    p_fuzz.add_argument("--count", type=int, default=25,
                        help="number of generated machines (default 25)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="first generator seed; case i uses seed+i")
    p_fuzz.add_argument("--repetitions", type=int, default=None,
                        help="latency samples per context pair "
                             "(default: 15, or 11 with --quick)")
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="fan cases out over N worker processes "
                             "(the report digest is jobs-independent)")
    p_fuzz.add_argument("--quick", action="store_true",
                        help="small machines and fewer samples for CI")
    p_fuzz.add_argument("--out", help="write the fuzz report JSON here")
    p_fuzz.add_argument("--artifacts", metavar="DIR",
                        help="write failing specs + report to this "
                             "directory (what CI uploads)")
    p_fuzz.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of text")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="minimize the first failing spec and write "
                             "it next to the artifacts")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    def endpoint(p: argparse.ArgumentParser) -> None:
        p.add_argument("--unix", help="unix socket path")
        p.add_argument("--host", help="TCP host")
        p.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one when serving)")

    p_serve = sub.add_parser(
        "serve",
        help="run mctopd: the topology-and-placement daemon "
             "(NDJSON over --unix and/or --host; SIGTERM drains)",
    )
    endpoint(p_serve)
    p_serve.add_argument("--store", help="on-disk .mct.gz cache directory")
    p_serve.add_argument("--cache-entries", type=int, default=32,
                         help="in-memory topology LRU size")
    p_serve.add_argument("--timeout", type=float, default=60.0,
                         help="per-request timeout (seconds)")
    p_serve.add_argument("--max-pending", type=int, default=64,
                         help="in-flight request bound before "
                              "backpressure errors")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         help="grace period for in-flight requests on "
                              "shutdown (seconds)")
    p_serve.add_argument("--repetitions", type=int, default=75,
                         help="default latency samples per context pair")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="serve Prometheus text on this HTTP port "
                              "(0 picks a free one); off by default")
    p_serve.add_argument("--metrics-host", default="127.0.0.1",
                         help="bind address for --metrics-port")
    p_serve.add_argument("--access-log",
                         help="rotating NDJSON access log path "
                              "(one line per request)")
    p_serve.add_argument("--event-log",
                         help="rotating NDJSON event log path (drift "
                              "checks, severity transitions, cache "
                              "evictions, watcher errors)")
    p_serve.add_argument("--watch-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="run the topology drift watcher this often "
                              "(needs --watch-machines)")
    p_serve.add_argument("--watch-machines", default=None,
                         metavar="M1,M2",
                         help="comma-separated catalog machines the drift "
                              "watcher re-checks")
    p_serve.add_argument("--watch-repetitions", type=int, default=15,
                         help="latency samples per pair for the watcher's "
                              "quick checks")
    p_serve.add_argument("--watch-seed", type=int, default=0,
                         help="seed for the watcher's checks (must match "
                              "the cached baseline's)")
    p_serve.add_argument("--member-id", default=None,
                         help="this daemon's fleet member id (names it on "
                              "the consistent-hash ring)")
    p_serve.add_argument("--peer", action="append", metavar="ENDPOINT",
                         help="fleet peer endpoint ([ID=]unix:PATH or "
                              "[ID=]tcp:HOST:PORT) to ask for cached "
                              "topologies before inferring; repeatable")
    p_serve.add_argument("--peer-timeout", type=float, default=5.0,
                         help="per-peer cache_fetch budget (seconds)")
    p_serve.add_argument("--peer-fanout", type=int, default=2,
                         help="ring-adjacent peers asked per cache miss")
    p_serve.add_argument("--no-placement-index", action="store_true",
                         help="skip precomputing placement indices; "
                              "place answers through the legacy "
                              "per-session pool (docs/PLACEMENT.md)")
    p_serve.add_argument("--no-trace-store", action="store_true",
                         help="skip the per-request trace store (the "
                              "trace verb answers enabled=false)")
    p_serve.add_argument("--trace-max-traces", type=int, default=512,
                         help="retained-trace count budget (default 512)")
    p_serve.add_argument("--trace-max-bytes", type=int, default=4_000_000,
                         help="retained-trace byte budget "
                              "(default 4000000)")
    p_serve.add_argument("--trace-ttl", type=float, default=600.0,
                         metavar="SECONDS",
                         help="retained traces expire after this long, "
                              "pinned or not (default 600)")
    p_serve.add_argument("--trace-sample-every", type=int, default=64,
                         metavar="N",
                         help="pin 1-in-N healthy traces as a baseline "
                              "sample (default 64)")
    p_serve.add_argument("--no-slo", action="store_true",
                         help="skip the SLO burn-rate engine (the slo "
                              "verb answers enabled=false)")
    p_serve.add_argument("--slo-objective", action="append",
                         metavar="VERB:p99=MS[,avail=PCT]",
                         help="per-verb objective, e.g. place:p99=50 or "
                              "infer:p99=5000,avail=99; repeatable "
                              "(default: built-in place/place_many/"
                              "infer objectives)")
    p_serve.add_argument("--profile", action="store_true",
                         help="run the continuous sampling profiler (the "
                              "profile verb, per-verb/per-request "
                              "flamegraphs; off by default)")
    p_serve.add_argument("--profile-hz", type=float, default=100.0,
                         help="profiler sampling rate (default 100)")
    p_serve.add_argument("--profile-max-bytes", type=int,
                         default=2_000_000,
                         help="profile store byte budget; new stacks "
                              "beyond it are dropped (default 2000000)")
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="run or inspect a sharded mctopd fleet (consistent-hash "
             "router + member daemons; see docs/FLEET.md)",
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    p_fserve = fleet_sub.add_parser(
        "serve",
        help="run the fleet router (--members N spawns member daemons "
             "in-process; --member ENDPOINT fronts external ones)",
    )
    endpoint(p_fserve)
    p_fserve.add_argument("--members", type=int, default=0, metavar="N",
                          help="spawn N member daemons in-process "
                               "(sockets and stores under --state-dir)")
    p_fserve.add_argument("--member", action="append", metavar="ENDPOINT",
                          help="external member endpoint ([ID=]unix:PATH "
                               "or [ID=]tcp:HOST:PORT); repeatable")
    p_fserve.add_argument("--state-dir", default="mctop-fleet",
                          help="spawned members' sockets, stores and "
                               "event logs live here")
    p_fserve.add_argument("--timeout", type=float, default=120.0,
                          help="per-member forwarded-request budget "
                               "(seconds); keep above the members' own "
                               "request timeout")
    p_fserve.add_argument("--max-pending", type=int, default=64,
                          help="router in-flight bound before "
                               "backpressure errors")
    p_fserve.add_argument("--drain-timeout", type=float, default=10.0,
                          help="grace period on shutdown (seconds)")
    p_fserve.add_argument("--repetitions", type=int, default=75,
                          help="default latency samples per context pair "
                               "(must match the members')")
    p_fserve.add_argument("--health-interval", type=float, default=5.0,
                          help="seconds between member health sweeps")
    p_fserve.add_argument("--probe-timeout", type=float, default=5.0,
                          help="per-member health probe budget (seconds)")
    p_fserve.add_argument("--fail-threshold", type=int, default=2,
                          help="consecutive failures before a member is "
                               "ejected from the ring")
    p_fserve.add_argument("--access-log",
                          help="router access log (NDJSON; lines carry "
                               "member and upstream_ms)")
    p_fserve.add_argument("--event-log",
                          help="router event log (NDJSON; member joins/"
                               "ejects, rebalances)")
    p_fserve.set_defaults(func=_cmd_fleet_serve)

    p_fstatus = fleet_sub.add_parser(
        "status",
        help="membership, ring and health of a running fleet router",
    )
    endpoint(p_fstatus)
    p_fstatus.add_argument("--timeout", type=float, default=30.0,
                           help="client-side socket timeout (seconds)")
    p_fstatus.add_argument("--json", action="store_true",
                           help="print the raw JSON document")
    p_fstatus.set_defaults(func=_cmd_fleet_status)

    p_fquery = fleet_sub.add_parser(
        "query",
        help="send one request through the fleet router (same protocol "
             "as mctop query; the router shards it by content address)",
    )
    from repro.service.protocol import VERBS as _VERBS

    p_fquery.add_argument("verb", choices=_VERBS)
    p_fquery.add_argument("machine", nargs="?",
                          help="catalog machine (topology verbs)")
    endpoint(p_fquery)
    p_fquery.add_argument("--policy", default="CON_HWC")
    p_fquery.add_argument("--threads", type=int, default=None)
    p_fquery.add_argument("--sockets", type=int, default=None)
    p_fquery.add_argument("--queries", metavar="JSON",
                          help="place_many verb: JSON list of "
                               "{policy, threads, sockets} query objects")
    p_fquery.add_argument("--timeout", type=float, default=120.0,
                          help="client-side socket timeout (seconds)")
    p_fquery.add_argument("--json", action="store_true",
                          help="print the raw JSON result")
    p_fquery.add_argument("--format",
                          choices=("json", "prom", "prometheus"),
                          default="json",
                          help="metrics verb only (the router merges "
                               "JSON metrics fleet-wide)")
    common(p_fquery)
    p_fquery.set_defaults(func=_cmd_query)

    p_query = sub.add_parser(
        "query",
        help="send one request to a running mctopd",
    )
    from repro.service.protocol import VERBS

    p_query.add_argument("verb", choices=VERBS)
    p_query.add_argument("machine", nargs="?",
                         help="catalog machine (topology verbs)")
    endpoint(p_query)
    p_query.add_argument("--policy", default="CON_HWC")
    p_query.add_argument("--threads", type=int, default=None)
    p_query.add_argument("--sockets", type=int, default=None)
    p_query.add_argument("--queries", metavar="JSON",
                         help="place_many verb: JSON list of "
                              "{policy, threads, sockets} query objects")
    p_query.add_argument("--timeout", type=float, default=120.0,
                         help="client-side socket timeout (seconds)")
    p_query.add_argument("--json", action="store_true",
                         help="print the raw JSON result")
    p_query.add_argument("--format", choices=("json", "prom", "prometheus"),
                         default="json",
                         help="metrics verb only: 'prom' prints the "
                              "Prometheus text exposition")
    common(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_top = sub.add_parser(
        "top",
        help="live dashboard for a running mctopd (rates, latency "
             "quantiles, cache hit ratio; polls the metrics verb)",
    )
    endpoint(p_top)
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between polls")
    p_top.add_argument("--count", type=int, default=None,
                       help="stop after N frames (default: until ^C)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the screen "
                            "(e.g. when piping to a file)")
    p_top.add_argument("--timeout", type=float, default=30.0,
                       help="client-side socket timeout (seconds)")
    p_top.add_argument("--fleet", action="store_true",
                       help="against a fleet router: add the membership "
                            "section (polls the fleet verb)")
    p_top.set_defaults(func=_cmd_top)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load generator for the placement service: "
             "mixed place_many/infer traffic at a target rate, "
             "p50/p99/p999 vs --slo-p99, place_qps into the bench "
             "history gate (see docs/PLACEMENT.md)",
    )
    endpoint(p_loadgen)
    p_loadgen.add_argument("--machine", default="testbox",
                           help="catalog machine the traffic targets "
                                "(default testbox)")
    p_loadgen.add_argument("--duration", type=float, default=10.0,
                           help="measured window (seconds, default 10)")
    p_loadgen.add_argument("--rate", type=float, default=150_000.0,
                           help="target placement-query arrival rate "
                                "(queries/sec, default 150000)")
    p_loadgen.add_argument("--batch", type=int, default=512,
                           help="queries per place_many frame "
                                "(default 512)")
    p_loadgen.add_argument("--workers", type=int, default=4,
                           help="client threads sharing the schedule, "
                                "one connection each (default 4)")
    p_loadgen.add_argument("--mix", default="place=0.9,infer=0.1",
                           help="relative frame-mix weights, e.g. "
                                "place=0.9,infer=0.1 (the default)")
    p_loadgen.add_argument("--include-stats", action="store_true",
                           help="ship the Figure-7 stats block with "
                                "every result (10x bigger responses)")
    p_loadgen.add_argument("--seed", type=int, default=1,
                           help="schedule/query RNG seed (default 1)")
    p_loadgen.add_argument("--repetitions", type=int, default=None,
                           help="latency samples per context pair for "
                                "the warm-up inference")
    p_loadgen.add_argument("--timeout", type=float, default=30.0,
                           help="client-side socket timeout (seconds)")
    p_loadgen.add_argument("--slo-p99", type=float, default=None,
                           metavar="MS",
                           help="fail (exit 1) when the place-frame p99 "
                                "exceeds this many milliseconds")
    p_loadgen.add_argument("--out",
                           help="write the full loadgen JSON document "
                                "here")
    p_loadgen.add_argument("--hist-out", metavar="PATH",
                           help="write the latency histogram JSON here "
                                "(the CI failure artifact)")
    p_loadgen.add_argument("--trace-out", metavar="PATH",
                           help="write the run's slowest-request traces "
                                "(from the daemon's latency exemplars) "
                                "as JSON here")
    p_loadgen.add_argument("--profile", action="store_true",
                           help="self-hosted runs: start the daemon with "
                                "the sampling profiler enabled")
    p_loadgen.add_argument("--profile-hz", type=float, default=100.0,
                           help="profiler sampling rate for --profile "
                                "(default 100)")
    p_loadgen.add_argument("--profile-out", metavar="PATH",
                           help="write the run's profile snapshot as "
                                "JSON here (implies --profile for "
                                "self-hosted runs)")
    p_loadgen.add_argument("--history", default=None,
                           help="append a place_qps record to this "
                                "JSONL history (default: "
                                "BENCH_HISTORY.jsonl next to --out)")
    p_loadgen.add_argument("--no-history", action="store_true",
                           help="skip the history append")
    p_loadgen.add_argument("--compare", metavar="BASELINE",
                           help="gate against a bench JSON or JSONL "
                                "history baseline; exit 1 on regression")
    p_loadgen.add_argument("--compare-metric", default="place_qps",
                           choices=("place_qps", "p99_ms",
                                    "samples_per_sec", "wall_seconds",
                                    "speedup_vs_scalar"),
                           help="metric the gate diffs (default "
                                "place_qps)")
    p_loadgen.add_argument("--threshold", type=float, default=0.15,
                           help="fractional worsening tolerated before "
                                "the gate fails (default 0.15 = 15%%)")
    p_loadgen.set_defaults(func=_cmd_loadgen)

    p_profile = sub.add_parser(
        "profile",
        help="inspect a running mctopd's continuous sampling profiler "
             "(per-verb / per-request flamegraphs; see "
             "docs/OBSERVABILITY.md)",
    )
    profile_sub = p_profile.add_subparsers(dest="profile_command",
                                           required=True)

    def profile_common(p: argparse.ArgumentParser) -> None:
        endpoint(p)
        p.add_argument("--timeout", type=float, default=30.0,
                       help="client-side socket timeout (seconds)")

    p_pshow = profile_sub.add_parser(
        "show",
        help="dump the collapsed stacks (optionally filtered to one "
             "verb or one request id, e.g. a /metrics exemplar)",
    )
    profile_common(p_pshow)
    p_pshow.add_argument("--verb", default=None,
                        help="only stacks sampled while this verb was "
                             "dispatching")
    p_pshow.add_argument("--request", default=None, metavar="REQUEST_ID",
                        help="this request's samples only (ids from "
                             "mctop top, /metrics exemplars or "
                             "client.last_request_ids)")
    p_pshow.add_argument("--limit", type=int, default=200,
                        help="stack entries kept, heaviest first "
                             "(default 200)")
    p_pshow.add_argument("--json", action="store_true",
                        help="print the raw profile document")
    p_pshow.add_argument("--collapsed", metavar="PATH",
                        help="write flamegraph.pl collapsed-stack "
                             "input here")
    p_pshow.add_argument("--speedscope", metavar="PATH",
                        help="write a speedscope JSON profile here")
    p_pshow.set_defaults(func=_cmd_profile)

    p_ptop = profile_sub.add_parser(
        "top",
        help="the hottest leaf functions (the mctop top panel, "
             "standalone)",
    )
    profile_common(p_ptop)
    p_ptop.add_argument("--verb", default=None,
                        help="only stacks sampled while this verb was "
                             "dispatching")
    p_ptop.add_argument("--request", default=None, metavar="REQUEST_ID",
                        help="this request's samples only")
    p_ptop.add_argument("--limit", type=int, default=15,
                        help="rows shown (default 15)")
    p_ptop.add_argument("--json", action="store_true",
                        help="print the raw profile document")
    p_ptop.set_defaults(func=_cmd_profile)

    p_preset = profile_sub.add_parser(
        "reset", help="clear the profiler's sample store",
    )
    profile_common(p_preset)
    p_preset.set_defaults(func=_cmd_profile)

    p_events = sub.add_parser(
        "events",
        help="inspect a rotating NDJSON event log (drift checks, SLO "
             "burns, fleet membership) without jq",
    )
    events_sub = p_events.add_subparsers(dest="events_command",
                                         required=True)
    p_etail = events_sub.add_parser(
        "tail",
        help="print the last events (across rotated segments), "
             "optionally filtered and followed",
    )
    p_etail.add_argument("path", help="event log path (the daemon's "
                                      "--event-log value)")
    p_etail.add_argument("--kind", default=None,
                         help="only this event kind (e.g. drift.check, "
                              "slo.alert, fleet.member_eject)")
    p_etail.add_argument("--request", default=None, metavar="REQUEST_ID",
                         help="only events stamped with this request id")
    p_etail.add_argument("-n", "--lines", type=int, default=10,
                         help="existing lines shown before following "
                              "(default 10; 0 = all)")
    p_etail.add_argument("--follow", action="store_true",
                         help="keep printing new events until ^C "
                              "(survives rotation)")
    p_etail.add_argument("--json", action="store_true",
                         help="print raw JSON records, one per line")
    p_etail.set_defaults(func=_cmd_events_tail)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except MctopError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

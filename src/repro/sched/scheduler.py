"""A centralized MCTOP-based scheduler (the paper's Future Work).

Section 9 sketches what a scheduler built on MCTOP must do: pick the
placement policy *for* the application (instead of asking the user),
handle applications that co-execute on one machine, and keep track of
the *effective* topology — "if an application is already executing, the
effective memory bandwidth for another application is less than the
total bandwidth reported by MCTOP".

This module implements that sketch:

* applications declare a workload class (``compute`` / ``bandwidth`` /
  ``latency``) and a thread count;
* the scheduler assigns disjoint hardware contexts, choosing the
  placement shape per class — compacting latency-bound apps onto the
  emptiest socket, spreading bandwidth-bound apps over the sockets with
  the most *remaining* bandwidth, giving compute-bound apps unique
  cores before SMT siblings;
* per-socket bandwidth reservations and per-core occupancy make up the
  effective-topology bookkeeping, queryable at any time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import PlacementError
from repro.core.mctop import Mctop


class WorkloadClass(Enum):
    COMPUTE = "compute"  # flop-bound: unique cores first, SMT last
    BANDWIDTH = "bandwidth"  # stream-bound: spread over free bandwidth
    LATENCY = "latency"  # sync-bound: compact on one socket


@dataclass(frozen=True)
class AppRequest:
    """What an arriving application asks for."""

    name: str
    n_threads: int
    workload: WorkloadClass
    bandwidth_demand: float = 0.0  # GB/s it will try to pull


@dataclass
class Assignment:
    """The scheduler's answer."""

    app_id: int
    name: str
    ctxs: tuple[int, ...]
    sockets: tuple[int, ...]
    rationale: str

    def __len__(self) -> int:
        return len(self.ctxs)


@dataclass
class _SocketState:
    contexts_free: list[int] = field(default_factory=list)
    bandwidth_reserved: float = 0.0


class MctopScheduler:
    """Tracks the effective topology and places co-executing apps."""

    def __init__(self, mctop: Mctop):
        self.mctop = mctop
        self._sockets: dict[int, _SocketState] = {}
        for sid in mctop.socket_ids():
            self._sockets[sid] = _SocketState(
                contexts_free=list(mctop.socket_get_contexts(sid))
            )
        self._apps: dict[int, Assignment] = {}
        self._bandwidth_by_app: dict[int, dict[int, float]] = {}
        self._ids = itertools.count(1)

    # --------------------------------------------------- effective view
    def free_contexts(self, socket_id: int | None = None) -> list[int]:
        if socket_id is not None:
            return list(self._sockets[socket_id].contexts_free)
        return [c for s in self._sockets.values() for c in s.contexts_free]

    def effective_bandwidth(self, socket_id: int) -> float:
        """Local bandwidth still available on a socket (the Future-Work
        quantity: total minus what running applications consume)."""
        total = self.mctop.local_bandwidth(socket_id)
        return max(total - self._sockets[socket_id].bandwidth_reserved, 0.0)

    def running_apps(self) -> list[Assignment]:
        return list(self._apps.values())

    def utilization(self) -> float:
        total = self.mctop.n_contexts
        free = len(self.free_contexts())
        return (total - free) / total

    # ---------------------------------------------------------- placing
    def schedule(self, request: AppRequest) -> Assignment:
        """Place an application; raises when it cannot fit."""
        if request.n_threads < 1:
            raise PlacementError("an application needs at least one thread")
        if request.n_threads > len(self.free_contexts()):
            raise PlacementError(
                f"{request.name}: {request.n_threads} threads requested, "
                f"{len(self.free_contexts())} contexts free"
            )
        if request.workload is WorkloadClass.LATENCY:
            ctxs, rationale = self._place_compact(request)
        elif request.workload is WorkloadClass.BANDWIDTH:
            ctxs, rationale = self._place_spread(request)
        else:
            ctxs, rationale = self._place_unique_cores(request)

        app_id = next(self._ids)
        sockets = tuple(
            sorted({self.mctop.socket_of_context(c) for c in ctxs})
        )
        assignment = Assignment(
            app_id=app_id,
            name=request.name,
            ctxs=tuple(ctxs),
            sockets=sockets,
            rationale=rationale,
        )
        self._commit(assignment, request)
        return assignment

    def finish(self, app_id: int) -> None:
        """Release an application's contexts and bandwidth."""
        assignment = self._apps.pop(app_id, None)
        if assignment is None:
            raise PlacementError(f"unknown app id {app_id}")
        for ctx in assignment.ctxs:
            sid = self.mctop.socket_of_context(ctx)
            self._sockets[sid].contexts_free.append(ctx)
            self._sockets[sid].contexts_free.sort()
        for sid, gbps in self._bandwidth_by_app.pop(app_id, {}).items():
            self._sockets[sid].bandwidth_reserved -= gbps

    def _commit(self, assignment: Assignment, request: AppRequest) -> None:
        per_socket_bw: dict[int, float] = {}
        counts: dict[int, int] = {}
        for ctx in assignment.ctxs:
            sid = self.mctop.socket_of_context(ctx)
            self._sockets[sid].contexts_free.remove(ctx)
            counts[sid] = counts.get(sid, 0) + 1
        if request.bandwidth_demand > 0:
            share = request.bandwidth_demand / len(assignment.ctxs)
            for sid, n in counts.items():
                gbps = share * n
                self._sockets[sid].bandwidth_reserved += gbps
                per_socket_bw[sid] = gbps
        self._apps[assignment.app_id] = assignment
        self._bandwidth_by_app[assignment.app_id] = per_socket_bw

    # ------------------------------------------------- placement shapes
    def _socket_core_order(self, sid: int) -> list[int]:
        """Free contexts of a socket: unique cores first, then siblings."""
        free = set(self._sockets[sid].contexts_free)
        out: list[int] = []
        later: list[int] = []
        for core in self.mctop.socket_get_cores(sid):
            ctxs = (
                self.mctop.core_get_contexts(core)
                if self.mctop.has_smt
                else [core]
            )
            avail = [c for c in ctxs if c in free]
            if avail:
                out.append(avail[0])
                later.extend(avail[1:])
        return out + later

    def _place_compact(self, request: AppRequest) -> tuple[list[int], str]:
        """Latency-bound: the emptiest sockets, filled one at a time."""
        order = sorted(
            self._sockets,
            key=lambda s: (-len(self._sockets[s].contexts_free), s),
        )
        ctxs: list[int] = []
        for sid in order:
            take = self._socket_core_order(sid)
            ctxs.extend(take[: request.n_threads - len(ctxs)])
            if len(ctxs) == request.n_threads:
                break
        return ctxs, (
            "latency-bound: compact on the emptiest socket(s) to minimize "
            "the max communication latency"
        )

    def _place_spread(self, request: AppRequest) -> tuple[list[int], str]:
        """Bandwidth-bound: round robin over remaining bandwidth."""
        order = sorted(
            (s for s in self._sockets if self._sockets[s].contexts_free),
            key=lambda s: (-self.effective_bandwidth(s), s),
        )
        pools = {s: self._socket_core_order(s) for s in order}
        ctxs: list[int] = []
        while len(ctxs) < request.n_threads:
            progressed = False
            for sid in order:
                if pools[sid] and len(ctxs) < request.n_threads:
                    ctxs.append(pools[sid].pop(0))
                    progressed = True
            if not progressed:  # pragma: no cover - guarded by capacity check
                break
        return ctxs, (
            "bandwidth-bound: spread over the sockets with the most "
            "effective (unreserved) memory bandwidth"
        )

    def _place_unique_cores(self, request: AppRequest) -> tuple[list[int], str]:
        """Compute-bound: free *cores* everywhere before any SMT sibling."""
        firsts: list[int] = []
        siblings: list[int] = []
        for sid in sorted(self._sockets):
            order = self._socket_core_order(sid)
            n_cores = len(
                {self.mctop.core_of_context(c) for c in order}
            )
            firsts.extend(order[:n_cores])
            siblings.extend(order[n_cores:])
        ctxs = (firsts + siblings)[: request.n_threads]
        return ctxs, (
            "compute-bound: one context per free physical core before "
            "any SMT sharing"
        )

    # ------------------------------------------------------------ report
    def report(self) -> str:
        lines = ["MCTOP scheduler state:"]
        for sid in sorted(self._sockets):
            state = self._sockets[sid]
            lines.append(
                f"  socket {sid}: {len(state.contexts_free)} contexts free, "
                f"{self.effective_bandwidth(sid):.1f} GB/s effective "
                f"bandwidth"
            )
        for app in self._apps.values():
            lines.append(
                f"  app {app.app_id} '{app.name}': {len(app.ctxs)} threads "
                f"on sockets {list(app.sockets)}"
            )
        return "\n".join(lines)

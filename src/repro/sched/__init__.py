"""Centralized scheduling on top of MCTOP (the paper's Future Work)."""

from repro.sched.scheduler import (
    AppRequest,
    Assignment,
    MctopScheduler,
    WorkloadClass,
)

__all__ = [
    "AppRequest",
    "Assignment",
    "MctopScheduler",
    "WorkloadClass",
]

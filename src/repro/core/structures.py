"""The MCTOP structures (Table 1 of the paper).

MCTOP represents a processor as a hierarchy of components linked both
vertically (context -> core group -> ... -> socket) and horizontally
(proximity successor chains), each annotated with the low-level
measurements libmctop collected.

Component ids follow libmctop's convention, visible in the paper's
Figure 7 where the sockets of Ivy are "20000 20001": a component of
level ``l`` gets id ``l * 10000 + index``.  Hardware contexts are level
0 and keep their OS ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ID_LEVEL_STRIDE = 10_000


def component_id(level: int, index: int) -> int:
    """Build a component id from its level and per-level index."""
    if level == 0:
        return index
    return level * ID_LEVEL_STRIDE + index


def level_of_id(comp_id: int) -> int:
    """Extract the level encoded in a component id."""
    return comp_id // ID_LEVEL_STRIDE


@dataclass
class HwContext:
    """The lowest scheduling unit of the processor.

    With SMT this is a hardware context; without, it is an actual core
    (the paper's ``hw_context`` row in Table 1).
    """

    id: int
    core_id: int  # id of the hwc_group representing its physical core
    socket_id: int
    smt_index: int = 0
    local_node: int | None = None
    next_ctx: int | None = None  # proximity successor (horizontal link)


@dataclass
class HwcGroup:
    """A group of hw_contexts or hwc_groups (e.g. a core, an L2 cluster).

    ``children`` are the ids of the level-below components; ``contexts``
    is the flattened set of hardware-context ids for convenience.
    """

    id: int
    level: int
    latency: int  # intra-group communication latency (cycles)
    children: tuple[int, ...]
    contexts: tuple[int, ...]
    parent_id: int | None = None
    socket_id: int | None = None


@dataclass
class MemoryNode:
    """A memory node: capacity plus its local socket."""

    id: int
    local_socket_id: int | None = None
    capacity_gb: float | None = None


@dataclass
class SocketData:
    """Per-socket annotations attached to the socket-level hwc_group."""

    id: int  # the socket hwc_group id
    local_node: int | None = None
    mem_latencies: dict[int, float] = field(default_factory=dict)  # node -> cycles
    mem_bandwidths: dict[int, float] = field(default_factory=dict)  # node -> GB/s
    mem_bandwidths_single: dict[int, float] = field(default_factory=dict)


@dataclass
class InterconnectLink:
    """The interconnection between two sockets (Table 1's interconnect)."""

    socket_a: int  # socket hwc_group ids, a < b
    socket_b: int
    latency: int  # cycles between contexts across this link
    n_hops: int  # 1 = direct, >1 = routed ("lvl 4" in the figures)
    bandwidth: float | None = None  # GB/s, memory over this path

    def other(self, socket_id: int) -> int:
        if socket_id == self.socket_a:
            return self.socket_b
        if socket_id == self.socket_b:
            return self.socket_a
        raise ValueError(f"socket {socket_id} not on this link")


@dataclass(frozen=True)
class LatencyCluster:
    """One cluster of latency values (min, median, max triplet)."""

    lo: float
    median: float
    hi: float

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def spread(self) -> float:
        return self.hi - self.lo


@dataclass(frozen=True)
class TopologyLevel:
    """One latency level of the topology (cluster + its components)."""

    level: int
    latency: int
    component_ids: tuple[int, ...]
    role: str = "group"  # "context" | "core" | "group" | "socket" | "cross"


@dataclass
class CacheInfo:
    """Measured cache hierarchy (cache plugin, Section 4)."""

    levels: tuple[int, ...] = ()
    latencies: dict[int, float] = field(default_factory=dict)  # level -> cycles
    sizes_kib: dict[int, int] = field(default_factory=dict)  # level -> KiB
    os_sizes_kib: dict[int, int] = field(default_factory=dict)


@dataclass
class PowerInfo:
    """Measured power calibration points (power plugin, Section 4)."""

    idle: float = 0.0
    full: float = 0.0
    first_context: float = 0.0
    second_context_delta: float = 0.0
    per_socket_idle: float = 0.0
    per_core_first: float = 0.0
    per_context_extra: float = 0.0
    dram_active_per_socket: float = 0.0

"""Ground-truth MCTOP construction from a machine spec.

``infer_topology`` recovers a topology from measurements; this module
builds the same :class:`Mctop` *directly* from the machine model — no
probes, no noise, no clustering.  The two must agree: that equivalence
is the oracle the property-based fuzzing harness (:mod:`repro.fuzz`)
checks with :func:`repro.obs.diff.compare_mctops` for every generated
machine.

The builder deliberately mirrors the conventions of
:func:`repro.core.algorithm.topology.build_topology` — component ids
(``level * 10000 + index``), group ordering by smallest member context,
socket ids, children wiring, cross-level extraction and the 2-hop link
classification — so a correct inference run matches the ground truth
*exactly*, not just up to isomorphism.

:func:`renumber_contexts` relabels the hardware contexts of an existing
topology (non-contiguous ids included), which is how the serializer's
renumbering-invariance is tested.
"""

from __future__ import annotations

import copy
from typing import Mapping

import numpy as np

from repro.core.algorithm.topology import TopologyConfig, _classify_cross_hops
from repro.core.mctop import Mctop, Provenance
from repro.core.structures import (
    CacheInfo,
    HwContext,
    HwcGroup,
    ID_LEVEL_STRIDE,
    InterconnectLink,
    LatencyCluster,
    MemoryNode,
    SocketData,
    TopologyLevel,
    component_id,
)
from repro.errors import MachineModelError
from repro.hardware.machine import Machine, MachineSpec


def _as_machine(target) -> Machine:
    if isinstance(target, str):  # catalog name or "synth:<seed>"
        from repro.hardware.catalog import get_machine

        return get_machine(target)
    if isinstance(target, Machine):
        return target
    if isinstance(target, MachineSpec):
        return Machine(target)
    if hasattr(target, "machine_spec"):  # SynthSpec and friends
        return Machine(target.machine_spec())
    raise MachineModelError(
        f"cannot build ground truth from {type(target).__name__}"
    )


def _intra_partitions(machine: Machine) -> list[tuple[int, list[list[int]]]]:
    """Bottom-up (latency, partition) pairs below and including sockets."""
    spec = machine.spec
    out: list[tuple[int, list[list[int]]]] = []
    if spec.has_smt:
        out.append((
            spec.smt_latency,
            [sorted(machine.contexts_of_core(c)) for c in range(spec.n_cores)],
        ))
    if spec.core_cluster_size > 1:
        clusters: dict[int, list[int]] = {}
        for core in range(spec.n_cores):
            for ctx in machine.contexts_of_core(core):
                clusters.setdefault(machine.cluster_of(core), []).append(ctx)
        out.append((
            spec.core_cluster_latency,
            [sorted(c) for c in clusters.values()],
        ))
    out.append((
        spec.core_latency,
        [machine.contexts_of_socket(s) for s in range(spec.n_sockets)],
    ))
    return out


def _true_lat_table(machine: Machine) -> np.ndarray:
    """Jitter-free pairwise communication latencies (base relations)."""
    spec = machine.spec
    n = spec.n_contexts
    table = np.zeros((n, n), dtype=np.float64)
    cores = [machine.core_of(c) for c in range(n)]
    for a in range(n):
        ca = cores[a]
        sa = ca // spec.cores_per_socket
        for b in range(a + 1, n):
            cb = cores[b]
            if ca == cb:
                value = spec.smt_latency
            else:
                sb = cb // spec.cores_per_socket
                if sa == sb:
                    value = spec.core_latency
                    if (spec.core_cluster_size > 1
                            and machine.cluster_of(ca)
                            == machine.cluster_of(cb)):
                        value = spec.core_cluster_latency
                else:
                    value = machine.socket_latency(sa, sb)
            table[a, b] = table[b, a] = float(value)
    return table


def ground_truth_mctop(
    target,
    name: str | None = None,
    cfg: TopologyConfig | None = None,
) -> Mctop:
    """The MCTOP a *perfect* inference run would produce for ``target``.

    ``target`` is a :class:`Machine`, a :class:`MachineSpec`, or
    anything with a ``machine_spec()`` method (a ``SynthSpec``).
    """
    machine = _as_machine(target)
    spec = machine.spec
    cfg = cfg or TopologyConfig()
    if spec.nodes_per_socket != 1:
        raise MachineModelError(
            "ground-truth builder supports one memory node per socket"
        )
    if spec.cores_per_socket < 2:
        raise MachineModelError(
            "ground truth needs >= 2 cores per socket (no core-latency "
            "relation exists otherwise)"
        )
    n = spec.n_contexts
    table = _true_lat_table(machine)

    # ----------------------------------------------------------- groups
    intra = _intra_partitions(machine)
    socket_level_idx = len(intra)
    groups: dict[int, HwcGroup] = {}
    levels: list[TopologyLevel] = [
        TopologyLevel(0, 0, tuple(range(n)), role="context")
    ]
    prev_parts: list[list[int]] = [[c] for c in range(n)]
    prev_ids: list[int] = list(range(n))
    for lvl, (latency, parts) in enumerate(intra, start=1):
        parts = sorted((sorted(p) for p in parts), key=lambda p: p[0])
        ids = []
        for idx, ctxs in enumerate(parts):
            cid = component_id(lvl, idx)
            members = set(ctxs)
            if lvl == 1:
                children = tuple(ctxs)
            else:
                children = tuple(
                    pid for pid, pctxs in zip(prev_ids, prev_parts)
                    if set(pctxs) <= members
                )
            groups[cid] = HwcGroup(
                id=cid,
                level=lvl,
                latency=int(round(latency)),
                children=children,
                contexts=tuple(ctxs),
            )
            ids.append(cid)
        if lvl == socket_level_idx:
            role = "socket"
        elif lvl == 1 and spec.has_smt:
            role = "core"
        else:
            role = "group"
        levels.append(
            TopologyLevel(lvl, int(round(latency)), tuple(ids), role)
        )
        prev_parts, prev_ids = parts, ids

    socket_ids = prev_ids
    socket_parts = prev_parts
    for sid in socket_ids:  # parent/socket wiring, top-down per socket
        stack = [sid]
        while stack:
            g = groups[stack.pop()]
            g.socket_id = sid
            for child in g.children:
                if child in groups:
                    groups[child].parent_id = g.id
                    stack.append(child)

    # --------------------------------------------------------- contexts
    contexts: dict[int, HwContext] = {}
    core_gid: dict[int, int] = {}
    if spec.has_smt:
        for cid in levels[1].component_ids:
            for smt_idx, ctx in enumerate(groups[cid].contexts):
                core_gid[ctx] = cid
                contexts[ctx] = HwContext(
                    id=ctx, core_id=cid, socket_id=0, smt_index=smt_idx
                )
    else:
        for ctx in range(n):
            contexts[ctx] = HwContext(id=ctx, core_id=ctx, socket_id=0)
    for sid, ctxs in zip(socket_ids, socket_parts):
        for ctx in ctxs:
            contexts[ctx].socket_id = sid
            contexts[ctx].local_node = machine.local_node_of_socket(
                machine.socket_of(ctx)
            )
    for ctx in range(n):
        row = table[ctx].copy()
        row[ctx] = np.inf
        contexts[ctx].next_ctx = int(np.argmin(row))

    # ------------------------------------------------ memory per socket
    sockets: dict[int, SocketData] = {}
    nodes: dict[int, MemoryNode] = {
        node: MemoryNode(id=node) for node in range(spec.n_nodes)
    }
    saturated: list[dict[int, float]] = []
    for s_idx, sid in enumerate(socket_ids):
        lat_map = {
            node: float(machine.mem_latency(s_idx, node))
            for node in range(spec.n_nodes)
        }
        bw_map = {}
        single_map = {}
        for node in range(spec.n_nodes):
            cap = machine.mem_bandwidth(s_idx, node)
            single = min(machine.mem_bandwidth_single(s_idx, node), cap)
            # What a full socket of streaming threads actually reaches:
            # per-thread bandwidth stacked up to the path's capacity.
            bw_map[node] = float(min(spec.cores_per_socket * single, cap))
            single_map[node] = float(single)
        saturated.append(bw_map)
        local = machine.local_node_of_socket(s_idx)
        sockets[sid] = SocketData(
            id=sid,
            local_node=local,
            mem_latencies=lat_map,
            mem_bandwidths=bw_map,
            mem_bandwidths_single=single_map,
        )
        nodes[local].local_socket_id = sid

    # ------------------------------------------------------ cross levels
    links: dict[tuple[int, int], InterconnectLink] = {}
    k = spec.n_sockets
    if k > 1:
        socket_lat = np.zeros((k, k), dtype=np.float64)
        for i in range(k):
            for j in range(k):
                if i != j:
                    socket_lat[i, j] = float(machine.socket_latency(i, j))
        hops = _classify_cross_hops(socket_lat, cfg)
        for i in range(k):
            for j in range(i + 1, k):
                a, b = sorted((socket_ids[i], socket_ids[j]))
                links[(a, b)] = InterconnectLink(
                    socket_a=a,
                    socket_b=b,
                    latency=int(round(socket_lat[i, j])),
                    n_hops=int(hops[i, j]),
                    bandwidth=float(
                        max(
                            saturated[i][machine.local_node_of_socket(j)],
                            saturated[j][machine.local_node_of_socket(i)],
                        )
                    ),
                )
        cross_classes = sorted(
            {socket_lat[i, j] for i in range(k) for j in range(i + 1, k)}
        )
        next_level = socket_level_idx + 1
        for cls in cross_classes:
            members = tuple(
                sorted(
                    {
                        socket_ids[i]
                        for i in range(k)
                        for j in range(k)
                        if i != j and socket_lat[i, j] == cls
                    }
                )
            )
            levels.append(
                TopologyLevel(next_level, int(round(cls)), members, "cross")
            )
            next_level += 1

    # ------------------------------------------------------- enrichment
    cache_info = CacheInfo(
        levels=tuple(cl.level for cl in spec.caches),
        latencies={cl.level: float(cl.latency) for cl in spec.caches},
        sizes_kib={cl.level: int(cl.size_kib) for cl in spec.caches},
        os_sizes_kib={cl.level: int(cl.size_kib) for cl in spec.caches},
    )
    relations = sorted(
        {float(table[i, j]) for i in range(n) for j in range(i + 1, n)}
    )
    clusters = tuple(LatencyCluster(lo=v, median=v, hi=v) for v in relations)

    return Mctop(
        name=name or spec.name,
        contexts=contexts,
        groups=groups,
        sockets=sockets,
        nodes=nodes,
        links=links,
        levels=tuple(levels),
        clusters=clusters,
        lat_table=table,
        has_smt=spec.has_smt,
        smt_per_core=spec.smt_per_core if spec.has_smt else 1,
        cache_info=cache_info,
        power_info=None,
        provenance=Provenance(machine=spec.name, inferred=False),
    )


def renumber_contexts(mctop: Mctop, mapping: Mapping[int, int]) -> Mctop:
    """A copy of ``mctop`` with hardware-context ids relabelled.

    ``mapping`` must cover every context id bijectively; new ids may be
    arbitrary (non-contiguous, gaps, any order) as long as they stay
    below :data:`ID_LEVEL_STRIDE` so they cannot collide with group ids.
    """
    old_ids = sorted(mctop.contexts)
    if sorted(mapping) != old_ids:
        raise MachineModelError("mapping must cover every context id")
    new_ids = sorted(mapping.values())
    if len(set(new_ids)) != len(new_ids):
        raise MachineModelError("mapping must be a bijection")
    if new_ids[0] < 0 or new_ids[-1] >= ID_LEVEL_STRIDE:
        raise MachineModelError(
            f"new context ids must stay in [0, {ID_LEVEL_STRIDE})"
        )

    def remap(cid: int) -> int:
        return mapping[cid] if cid in mapping else cid

    contexts = {}
    for old, ctx in mctop.contexts.items():
        contexts[mapping[old]] = HwContext(
            id=mapping[old],
            core_id=remap(ctx.core_id),  # core_id == ctx id without SMT
            socket_id=ctx.socket_id,
            smt_index=ctx.smt_index,
            local_node=ctx.local_node,
            next_ctx=None if ctx.next_ctx is None else mapping[ctx.next_ctx],
        )
    groups = {}
    for gid, group in mctop.groups.items():
        groups[gid] = HwcGroup(
            id=gid,
            level=group.level,
            latency=group.latency,
            children=tuple(remap(c) for c in group.children),
            contexts=tuple(sorted(mapping[c] for c in group.contexts)),
            parent_id=group.parent_id,
            socket_id=group.socket_id,
        )
    levels = tuple(
        TopologyLevel(
            lv.level,
            lv.latency,
            tuple(sorted(remap(c) for c in lv.component_ids))
            if lv.level == 0 else lv.component_ids,
            lv.role,
        )
        for lv in mctop.levels
    )
    # Permute the latency table from old sorted-id order to new order.
    inverse = {new: old for old, new in mapping.items()}
    old_row = {cid: i for i, cid in enumerate(old_ids)}
    perm = [old_row[inverse[new]] for new in new_ids]
    table = mctop.lat_table[np.ix_(perm, perm)].copy()

    return Mctop(
        name=mctop.name,
        contexts=contexts,
        groups=groups,
        sockets=copy.deepcopy(mctop.sockets),
        nodes=copy.deepcopy(mctop.nodes),
        links=copy.deepcopy(mctop.links),
        levels=levels,
        clusters=mctop.clusters,
        lat_table=table,
        has_smt=mctop.has_smt,
        smt_per_core=mctop.smt_per_core,
        cache_info=copy.deepcopy(mctop.cache_info),
        power_info=copy.deepcopy(mctop.power_info),
        provenance=Provenance(**vars(mctop.provenance)),
    )

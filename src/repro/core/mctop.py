"""The MCTOP topology object and its query engine.

``Mctop`` is what ``infer_topology`` produces and what every policy in
the paper is written against: a processor description annotated with
measured latencies and bandwidths, queryable without any assumption
about the concrete machine ("use n cores closest to core x", "two
sockets with maximum bandwidth", ...).

The interface mirrors libmctop's C API names where the paper shows
them (``mctop_get_local_node``, ``mctop_socket_get_cores``,
``mctop_get_latency``) as snake_case methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.errors import ValidationError
from repro.core.structures import (
    CacheInfo,
    HwContext,
    HwcGroup,
    InterconnectLink,
    LatencyCluster,
    MemoryNode,
    PowerInfo,
    SocketData,
    TopologyLevel,
    level_of_id,
)


@dataclass
class Provenance:
    """How a topology was obtained (machine, seed, measurement effort).

    ``trace_summary`` is the deterministic digest of the inference
    run's observability data (span/instant counts and every counter
    final) — enough to audit how much measurement work produced the
    topology without storing wall-clock timings, so description files
    remain byte-for-byte reproducible for a given seed.
    """

    machine: str = "unknown"
    seed: int | None = None
    samples_taken: int = 0
    repetitions: int = 0
    inferred: bool = True  # False when loaded from a description file
    extras: dict[str, float] = field(default_factory=dict)
    trace_summary: dict = field(default_factory=dict)


class Mctop:
    """A complete MCTOP topology (Table 1's ``mctop`` structure)."""

    def __init__(
        self,
        name: str,
        contexts: dict[int, HwContext],
        groups: dict[int, HwcGroup],
        sockets: dict[int, SocketData],
        nodes: dict[int, MemoryNode],
        links: dict[tuple[int, int], InterconnectLink],
        levels: tuple[TopologyLevel, ...],
        clusters: tuple[LatencyCluster, ...],
        lat_table: np.ndarray,
        has_smt: bool,
        smt_per_core: int,
        cache_info: CacheInfo | None = None,
        power_info: PowerInfo | None = None,
        provenance: Provenance | None = None,
    ):
        self.name = name
        self.contexts = contexts
        self.groups = groups
        self.sockets = sockets
        self.nodes = nodes
        self.links = links
        self.levels = levels
        self.clusters = clusters
        self.lat_table = lat_table
        self.has_smt = has_smt
        self.smt_per_core = smt_per_core
        self.cache_info = cache_info
        self.power_info = power_info
        self.provenance = provenance or Provenance()
        # Context ids need not be contiguous (renumbered/synthetic
        # machines); the latency table rows follow sorted-id order.
        self._ctx_rows = {cid: i for i, cid in enumerate(sorted(contexts))}
        #: Lazy caches for the placement API: the ``placements`` pool
        #: and the precomputed per-policy index (attached by
        #: ``load_mctop`` when a sidecar exists, or built on demand).
        self._placements = None
        self._placement_index = None
        self._validate_linkage()

    # ------------------------------------------------------------ basics
    @property
    def n_contexts(self) -> int:
        return len(self.contexts)

    @property
    def n_sockets(self) -> int:
        return len(self.sockets)

    @property
    def n_cores(self) -> int:
        return len(self.core_ids())

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def socket_ids(self) -> list[int]:
        return sorted(self.sockets)

    def core_ids(self) -> list[int]:
        return sorted({ctx.core_id for ctx in self.contexts.values()})

    def context_ids(self) -> list[int]:
        return sorted(self.contexts)

    def node_ids(self) -> list[int]:
        return sorted(self.nodes)

    # ---------------------------------------------------------- vertical
    def get_local_node(self, ctx_id: int) -> int | None:
        """``mctop_get_local_node``: the memory node local to a context."""
        return self.contexts[ctx_id].local_node

    def socket_of_context(self, ctx_id: int) -> int:
        return self.contexts[ctx_id].socket_id

    def core_of_context(self, ctx_id: int) -> int:
        return self.contexts[ctx_id].core_id

    def socket_get_cores(self, socket_id: int) -> list[int]:
        """``mctop_socket_get_cores``: core hwc_group ids of a socket."""
        self._check_socket(socket_id)
        return sorted(
            {
                ctx.core_id
                for ctx in self.contexts.values()
                if ctx.socket_id == socket_id
            }
        )

    def socket_get_contexts(self, socket_id: int) -> list[int]:
        self._check_socket(socket_id)
        return sorted(self.groups[socket_id].contexts)

    def core_get_contexts(self, core_id: int) -> list[int]:
        """Contexts of one physical core, SMT-index order."""
        ctxs = [c for c in self.contexts.values() if c.core_id == core_id]
        if not ctxs:
            raise ValidationError(f"unknown core id {core_id}")
        return [c.id for c in sorted(ctxs, key=lambda c: c.smt_index)]

    def socket_of_node(self, node_id: int) -> int | None:
        return self.nodes[node_id].local_socket_id

    def node_of_socket(self, socket_id: int) -> int | None:
        self._check_socket(socket_id)
        return self.sockets[socket_id].local_node

    def _check_socket(self, socket_id: int) -> None:
        if socket_id not in self.sockets:
            raise ValidationError(f"unknown socket id {socket_id}")

    # ----------------------------------------------------------- latency
    def get_latency(self, id0: int, id1: int) -> int:
        """``mctop_get_latency``: latency between any two components.

        For two contexts this is the normalized measured value; for
        groups, the latency between representative contexts; for a
        component against itself, its internal latency.
        """
        if id0 == id1:
            if id0 in self.contexts:
                return 0
            return self.groups[id0].latency
        c0 = self._representative(id0)
        c1 = self._representative(id1)
        if c0 == c1:  # e.g. a context against its own core
            inner = id0 if level_of_id(id0) > level_of_id(id1) else id1
            return self.groups[inner].latency
        return int(self.lat_table[self._ctx_rows[c0], self._ctx_rows[c1]])

    def _representative(self, comp_id: int) -> int:
        if comp_id in self.contexts:
            return comp_id
        group = self.groups.get(comp_id)
        if group is None:
            raise ValidationError(f"unknown component id {comp_id}")
        return min(group.contexts)

    def socket_latency(self, socket_a: int, socket_b: int) -> int:
        """Cross-socket communication latency (intra latency if equal)."""
        if socket_a == socket_b:
            return self.groups[socket_a].latency
        key = (min(socket_a, socket_b), max(socket_a, socket_b))
        link = self.links.get(key)
        if link is not None:
            return link.latency
        return self.get_latency(socket_a, socket_b)

    def max_latency(self, ctx_ids: list[int]) -> int:
        """Maximum pairwise latency among a set of contexts.

        This is the paper's educated-backoff quantum (Section 5): the
        longest time a coherence "message" needs between the threads of
        an execution.
        """
        if len(ctx_ids) < 2:
            return 0
        return max(self.get_latency(a, b) for a, b in combinations(ctx_ids, 2))

    def latency_levels(self) -> list[tuple[int, int]]:
        """(level, latency) pairs, ascending."""
        return [(lv.level, lv.latency) for lv in self.levels]

    def smt_latency(self) -> int | None:
        """Latency between SMT siblings, if the machine has SMT."""
        if not self.has_smt:
            return None
        for lv in self.levels:
            if lv.role == "core":
                return lv.latency
        return None

    # ------------------------------------------------------------ memory
    def mem_latency(self, socket_id: int, node_id: int) -> float:
        self._check_socket(socket_id)
        return self.sockets[socket_id].mem_latencies[node_id]

    def mem_bandwidth(self, socket_id: int, node_id: int) -> float:
        self._check_socket(socket_id)
        return self.sockets[socket_id].mem_bandwidths[node_id]

    def mem_bandwidth_single(self, socket_id: int, node_id: int) -> float:
        self._check_socket(socket_id)
        return self.sockets[socket_id].mem_bandwidths_single[node_id]

    def local_bandwidth(self, socket_id: int) -> float:
        """Bandwidth of a socket to its local node."""
        node = self.node_of_socket(socket_id)
        if node is None:
            raise ValidationError(f"socket {socket_id} has no local node")
        return self.mem_bandwidth(socket_id, node)

    def local_mem_latency(self, socket_id: int) -> float:
        node = self.node_of_socket(socket_id)
        if node is None:
            raise ValidationError(f"socket {socket_id} has no local node")
        return self.mem_latency(socket_id, node)

    def has_memory_measurements(self) -> bool:
        return all(s.mem_bandwidths for s in self.sockets.values())

    # ------------------------------------------------- high-level policy
    def sockets_by_local_bandwidth(self) -> list[int]:
        """Socket ids, highest local memory bandwidth first."""
        if not self.has_memory_measurements():
            return self.socket_ids()
        return sorted(
            self.sockets, key=lambda s: (-self.local_bandwidth(s), s)
        )

    def closest_sockets(self, socket_id: int) -> list[int]:
        """Other sockets ordered by communication latency (then id)."""
        self._check_socket(socket_id)
        others = [s for s in self.sockets if s != socket_id]
        return sorted(others, key=lambda s: (self.socket_latency(socket_id, s), s))

    def min_latency_socket_pair(self) -> tuple[int, int]:
        """The two best-connected sockets ("use any two sockets that
        minimize latency" — the portable version of 'use sockets 0,1')."""
        if self.n_sockets < 2:
            raise ValidationError("need at least two sockets")
        return min(
            combinations(self.socket_ids(), 2),
            key=lambda p: self.socket_latency(*p),
        )

    def max_bandwidth_socket_pair(self) -> tuple[int, int]:
        """Two sockets maximizing their interconnect bandwidth."""
        if self.n_sockets < 2:
            raise ValidationError("need at least two sockets")

        def pair_bw(p: tuple[int, int]) -> float:
            link = self.links.get((min(p), max(p)))
            if link is not None and link.bandwidth is not None:
                return link.bandwidth
            return 0.0

        return max(combinations(self.socket_ids(), 2), key=pair_bw)

    def proximity_order(self, start_ctx: int) -> list[int]:
        """All contexts ordered by latency from ``start_ctx``.

        The horizontal successor chain of the paper: each context's
        ``next_ctx`` points to its proximity successor; this walks the
        chain from an arbitrary start.
        """
        others = [c for c in self.contexts if c != start_ctx]
        ordered = sorted(
            others, key=lambda c: (self.get_latency(start_ctx, c), c)
        )
        return [start_ctx] + ordered

    def contexts_with_llc_share(self, min_mb_per_thread: float) -> list[int]:
        """Max set of contexts such that each gets >= the given LLC share.

        Implements the paper's example policy "use the maximum number of
        threads ... so that each thread has access to at least 3 MB of
        LLC".  Requires cache measurements.
        """
        if self.cache_info is None or not self.cache_info.sizes_kib:
            raise ValidationError("no cache measurements available")
        llc_level = max(self.cache_info.sizes_kib)
        llc_mb = self.cache_info.sizes_kib[llc_level] / 1024.0
        per_socket = max(1, int(llc_mb // min_mb_per_thread))
        out: list[int] = []
        for s in self.socket_ids():
            out.extend(self.socket_get_contexts(s)[:per_socket])
        return out

    # --------------------------------------------------------- placement
    @property
    def placements(self):
        """The topology's placement pool (lazily built, cached).

        The supported way to get a
        :class:`~repro.place.pool.PlacementPool` — constructing one
        directly is deprecated in favor of this property, so every
        consumer of the same topology shares one memoized pool.
        """
        if self._placements is None:
            from repro.place.pool import PlacementPool

            self._placements = PlacementPool(self, _warn=False)
        return self._placements

    def placement_index(self, build: bool = True):
        """The precomputed per-policy placement index.

        Built eagerly on first call (``build=True``) and cached on the
        topology; with ``build=False`` returns whatever is attached
        (``load_mctop`` attaches a persisted sidecar index) or ``None``.
        """
        if self._placement_index is None and build:
            from repro.place.index import PlacementIndex

            index = PlacementIndex(self)
            index.build()
            self._placement_index = index
        return self._placement_index

    # -------------------------------------------------------- validation
    def _validate_linkage(self) -> None:
        for ctx in self.contexts.values():
            if ctx.socket_id not in self.sockets:
                raise ValidationError(
                    f"context {ctx.id} references unknown socket {ctx.socket_id}"
                )
        for (a, b), link in self.links.items():
            if a not in self.sockets or b not in self.sockets:
                raise ValidationError(f"link ({a}, {b}) references unknown socket")
            if (link.socket_a, link.socket_b) != (a, b):
                raise ValidationError(f"link ({a}, {b}) is mislabelled")
        n = self.n_contexts
        if self.lat_table.shape != (n, n):
            raise ValidationError(
                f"latency table shape {self.lat_table.shape} != ({n}, {n})"
            )

    # ------------------------------------------------------------ output
    def summary(self) -> str:
        """Human-readable description (the textual topology view)."""
        lines = [
            f"MCTOP topology '{self.name}'",
            f"  hw contexts : {self.n_contexts}",
            f"  cores       : {self.n_cores}",
            f"  sockets     : {self.n_sockets}",
            f"  memory nodes: {self.n_nodes}",
            f"  SMT         : {self.smt_per_core}-way" if self.has_smt else "  SMT         : no",
            "  latency levels:",
        ]
        for lv in self.levels:
            lines.append(
                f"    level {lv.level}: {lv.latency:>5} cycles "
                f"({lv.role}, {len(lv.component_ids)} components)"
            )
        if self.has_memory_measurements():
            for s in self.socket_ids():
                node = self.node_of_socket(s)
                lines.append(
                    f"  socket {s}: local node {node}, "
                    f"{self.local_mem_latency(s):.0f} cy, "
                    f"{self.local_bandwidth(s):.1f} GB/s"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mctop({self.name!r}, sockets={self.n_sockets}, "
            f"cores={self.n_cores}, contexts={self.n_contexts})"
        )

"""MCTOP description files (the ``.mct`` format).

libmctop runs the expensive inference once and stores the result in a
description file which later runs simply load (Section 2).  We store a
versioned JSON document: human-inspectable, diff-able, and forward
compatible (unknown keys are ignored on load).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.core.mctop import Mctop, Provenance
from repro.core.structures import (
    CacheInfo,
    HwContext,
    HwcGroup,
    InterconnectLink,
    LatencyCluster,
    MemoryNode,
    PowerInfo,
    SocketData,
    TopologyLevel,
)

FORMAT_VERSION = 1


def _intkeys(d: dict) -> dict:
    return {int(k): v for k, v in d.items()}


def mctop_to_dict(mctop: Mctop) -> dict:
    """Serialize a topology to plain JSON-compatible data."""
    return {
        "format": "mctop-description",
        "version": FORMAT_VERSION,
        "name": mctop.name,
        "has_smt": mctop.has_smt,
        "smt_per_core": mctop.smt_per_core,
        "provenance": vars(mctop.provenance),
        "contexts": [vars(c) for c in mctop.contexts.values()],
        "groups": [vars(g) for g in mctop.groups.values()],
        "sockets": [vars(s) for s in mctop.sockets.values()],
        "nodes": [vars(n) for n in mctop.nodes.values()],
        "links": [vars(l) for l in mctop.links.values()],
        "levels": [vars(lv) for lv in mctop.levels],
        "clusters": [vars(c) for c in mctop.clusters],
        "lat_table": mctop.lat_table.tolist(),
        "cache_info": vars(mctop.cache_info) if mctop.cache_info else None,
        "power_info": vars(mctop.power_info) if mctop.power_info else None,
    }


def mctop_from_dict(data: dict) -> Mctop:
    """Rebuild a topology from serialized data."""
    try:
        if data.get("format") != "mctop-description":
            raise SerializationError("not an MCTOP description document")
        if data.get("version", 0) > FORMAT_VERSION:
            raise SerializationError(
                f"description version {data['version']} is newer than this "
                f"library supports ({FORMAT_VERSION})"
            )
        contexts = {c["id"]: HwContext(**c) for c in data["contexts"]}
        groups = {}
        for g in data["groups"]:
            g = dict(g)
            g["children"] = tuple(g["children"])
            g["contexts"] = tuple(g["contexts"])
            groups[g["id"]] = HwcGroup(**g)
        sockets = {}
        for s in data["sockets"]:
            s = dict(s)
            s["mem_latencies"] = _intkeys(s.get("mem_latencies", {}))
            s["mem_bandwidths"] = _intkeys(s.get("mem_bandwidths", {}))
            s["mem_bandwidths_single"] = _intkeys(
                s.get("mem_bandwidths_single", {})
            )
            sockets[s["id"]] = SocketData(**s)
        nodes = {n["id"]: MemoryNode(**n) for n in data["nodes"]}
        links = {}
        for l in data["links"]:
            link = InterconnectLink(**l)
            links[(link.socket_a, link.socket_b)] = link
        levels = tuple(
            TopologyLevel(
                level=lv["level"],
                latency=lv["latency"],
                component_ids=tuple(lv["component_ids"]),
                role=lv.get("role", "group"),
            )
            for lv in data["levels"]
        )
        clusters = tuple(LatencyCluster(**c) for c in data["clusters"])
        cache_info = None
        if data.get("cache_info"):
            ci = dict(data["cache_info"])
            ci["levels"] = tuple(ci.get("levels", ()))
            ci["latencies"] = _intkeys(ci.get("latencies", {}))
            ci["sizes_kib"] = _intkeys(ci.get("sizes_kib", {}))
            ci["os_sizes_kib"] = _intkeys(ci.get("os_sizes_kib", {}))
            cache_info = CacheInfo(**ci)
        power_info = PowerInfo(**data["power_info"]) if data.get("power_info") else None
        prov_data = dict(data.get("provenance", {}))
        provenance = Provenance(**prov_data) if prov_data else Provenance()
        return Mctop(
            name=data["name"],
            contexts=contexts,
            groups=groups,
            sockets=sockets,
            nodes=nodes,
            links=links,
            levels=levels,
            clusters=clusters,
            lat_table=np.array(data["lat_table"], dtype=float),
            has_smt=data["has_smt"],
            smt_per_core=data["smt_per_core"],
            cache_info=cache_info,
            power_info=power_info,
            provenance=provenance,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed MCTOP description: {exc}") from exc


#: The two magic bytes every gzip stream starts with.
_GZIP_MAGIC = b"\x1f\x8b"


def save_mctop(mctop: Mctop, path: str | Path) -> Path:
    """Write a description file; returns the path written.

    A ``.gz`` suffix anywhere in the name (``.mct.gz``, ``.json.gz``)
    selects gzip compression — an order of magnitude smaller for the
    big machines, which keeps the service's on-disk store compact.
    The stream is written with ``mtime=0`` so identical topologies
    produce byte-identical files.
    """
    path = Path(path)
    payload = json.dumps(mctop_to_dict(mctop), indent=1).encode("utf-8")
    if ".gz" in path.suffixes:
        # fileobj + mtime=0 keeps the stream free of the filename and
        # timestamp, so identical topologies are byte-identical files.
        with open(path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, filename="", mode="wb",
                               mtime=0) as fh:
                fh.write(payload)
    else:
        path.write_bytes(payload)
    return path


def load_mctop(path: str | Path) -> Mctop:
    """Load a topology from a description file.

    Compression is detected from the file's magic bytes (not its
    name), so a renamed ``.mct.gz`` still loads.  A placement-index
    sidecar (``x.pidx.gz`` next to ``x.mct.gz``) is attached when
    present, so loaded topologies answer indexed ``place`` queries
    without a rebuild; a stale or corrupt sidecar is simply ignored.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
        if raw[:2] == _GZIP_MAGIC:
            raw = gzip.decompress(raw)
        data = json.loads(raw.decode("utf-8"))
    except (OSError, gzip.BadGzipFile, EOFError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc
    mctop = mctop_from_dict(data)
    mctop.provenance.inferred = False
    from repro.place.index import load_placement_index, placement_index_path

    sidecar = placement_index_path(path)
    if sidecar.exists():
        try:
            mctop._placement_index = load_placement_index(sidecar, mctop)
        except SerializationError:
            pass
    return mctop

"""The MCTOP abstraction: structures, inference, plugins, serialization."""

from repro.core.mctop import Mctop, Provenance
from repro.core.structures import (
    CacheInfo,
    HwContext,
    HwcGroup,
    InterconnectLink,
    LatencyCluster,
    MemoryNode,
    PowerInfo,
    SocketData,
    TopologyLevel,
    component_id,
    level_of_id,
)

__all__ = [
    "CacheInfo",
    "HwContext",
    "HwcGroup",
    "InterconnectLink",
    "LatencyCluster",
    "MemoryNode",
    "Mctop",
    "PowerInfo",
    "Provenance",
    "SocketData",
    "TopologyLevel",
    "component_id",
    "level_of_id",
]

"""Visualization of MCTOP topologies.

Reproduces the paper's two Graphviz views (Figures 1-3):

* the intra-socket graph — one socket's contexts grouped by core, plus
  every memory node with its latency and bandwidth from that socket;
* the cross-socket graph — sockets as nodes, annotated interconnect
  links, and a "lvl N (2 hops)" note for routed socket pairs.

Only DOT *text* is produced (rendering needs the graphviz binary, which
is out of scope); the test suite checks the structure of the output.
The module also renders the step-1/step-2 views of Figure 6: an ASCII
latency heatmap and the CDF dump of the latency values.
"""

from __future__ import annotations

import numpy as np

from repro.core.mctop import Mctop


def _fmt_ctx(ctx: int) -> str:
    return f"{ctx:03d}"


def intra_socket_dot(mctop: Mctop, socket_id: int | None = None) -> str:
    """DOT source for the intra-socket view (e.g. Figure 1a / 2a)."""
    sid = socket_id if socket_id is not None else mctop.socket_ids()[0]
    intra_lat = mctop.groups[sid].latency
    lines = [
        "graph mctop_intra {",
        "  rankdir=TB;",
        f'  label="Socket {sid} - {intra_lat} cycles";',
        "  node [shape=box];",
    ]
    for core in mctop.socket_get_cores(sid):
        ctxs = (
            mctop.core_get_contexts(core)
            if mctop.has_smt
            else [core]
        )
        label = " ".join(_fmt_ctx(c) for c in ctxs)
        smt_note = ""
        if mctop.has_smt and len(ctxs) > 1:
            smt_note = f" | {mctop.get_latency(ctxs[0], ctxs[1])}"
        lines.append(
            f'  core_{core} [shape=record, label="{label}{smt_note}"];'
        )
    sdata = mctop.sockets[sid]
    for node, lat in sorted(sdata.mem_latencies.items()):
        bw = sdata.mem_bandwidths.get(node)
        bw_txt = f"\\n{bw:.1f} GB/s" if bw is not None else ""
        local = node == sdata.local_node
        style = ", style=filled, fillcolor=gray" if local else ""
        lines.append(
            f'  node_{node} [label="Node {node}\\n{lat:.0f} cy{bw_txt}"{style}];'
        )
        first_core = mctop.socket_get_cores(sid)[0]
        lines.append(f"  core_{first_core} -- node_{node} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)


def cross_socket_dot(mctop: Mctop) -> str:
    """DOT source for the cross-socket view (e.g. Figure 1b / 2b)."""
    lines = [
        "graph mctop_cross {",
        "  layout=circo;",
        "  node [shape=circle];",
    ]
    for idx, sid in enumerate(mctop.socket_ids()):
        lines.append(f'  s{sid} [label="{idx}"];')
    routed: list[str] = []
    for (a, b), link in sorted(mctop.links.items()):
        bw = f"\\n{link.bandwidth:.1f} GB/s" if link.bandwidth else ""
        if link.n_hops == 1:
            lines.append(
                f'  s{a} -- s{b} [label="{link.latency} cy{bw}"];'
            )
        else:
            routed.append(f"{link.latency}")
    if routed:
        level = len({lv.latency for lv in mctop.levels}) - 1
        lines.append(
            f'  legend [shape=note, label="lvl {level} (2 hops)\\n'
            f'{routed[0]} cy"];'
        )
    lines.append("}")
    return "\n".join(lines)


def latency_heatmap(table: np.ndarray, buckets: str = " .:-=+*#%@") -> str:
    """ASCII heatmap of a latency table (Figure 6, step 1)."""
    t = np.asarray(table, dtype=float)
    hi = t.max() or 1.0
    rows = []
    for row in t:
        chars = [buckets[min(int(v / hi * (len(buckets) - 1)), len(buckets) - 1)]
                 for v in row]
        rows.append("".join(chars))
    return "\n".join(rows)


def cdf_dump(table: np.ndarray, points: int = 20) -> str:
    """Text rendering of the latency CDF (Figure 6, step 2a)."""
    from repro.core.algorithm.clustering import compute_cdf

    values, cdf = compute_cdf(table)
    idxs = np.linspace(0, values.size - 1, points).astype(int)
    lines = ["latency   CDF"]
    for i in idxs:
        bar = "#" * int(cdf[i] * 40)
        lines.append(f"{values[i]:7.0f}  {cdf[i]:5.3f} {bar}")
    return "\n".join(lines)


def topology_ascii(mctop: Mctop) -> str:
    """Compact ASCII tree of the whole topology."""
    lines = [f"{mctop.name} ({mctop.n_contexts} contexts)"]
    for sid in mctop.socket_ids():
        node = mctop.node_of_socket(sid)
        lines.append(f"+- socket {sid} (local node {node})")
        for core in mctop.socket_get_cores(sid):
            ctxs = mctop.core_get_contexts(core) if mctop.has_smt else [core]
            lines.append(
                "|  +- core "
                + " ".join(_fmt_ctx(c) for c in ctxs)
            )
    return "\n".join(lines)

"""Cache latency and size plugin (Section 4).

Walks a dependent-load working set of growing size and watches the
per-access latency curve: each plateau is a cache level, each step a
capacity boundary.  The latency technique is the same pointer chase as
the memory-latency plugin; the size estimate is "the largest working
set before the latency jumps".  The plugin also records the cache sizes
the operating system reports, as libmctop does.
"""

from __future__ import annotations

import numpy as np

from repro.core.mctop import Mctop
from repro.core.plugins.base import Plugin
from repro.core.structures import CacheInfo
from repro.hardware.probes import MeasurementContext

#: latency must grow by this factor to count as a new cache level
_JUMP_FACTOR = 1.5


def _sweep_sizes(max_bytes: int) -> list[int]:
    """Geometric sweep from 4 KiB to 4x the largest expected cache."""
    sizes = []
    size = 4 * 1024
    while size <= max_bytes * 4:
        sizes.append(size)
        sizes.append(int(size * 1.5))
        size *= 2
    return sorted(set(sizes))


class CachePlugin(Plugin):
    name = "cache"

    def __init__(self, repetitions: int = 5):
        self.repetitions = repetitions

    def run(self, mctop: Mctop, probe: MeasurementContext) -> None:
        ctx = mctop.context_ids()[0]
        llc_bytes = probe.machine.spec.caches[-1].size_bytes
        sizes = _sweep_sizes(llc_bytes)
        curve = [
            (
                ws,
                float(
                    np.median([
                        probe.cache_latency_sample(ctx, ws)
                        for _ in range(self.repetitions)
                    ])
                ),
            )
            for ws in sizes
        ]

        levels: list[tuple[int, float]] = []  # (largest ws, plateau latency)
        plateau_lat = curve[0][1]
        plateau_ws = curve[0][0]
        for ws, lat in curve[1:]:
            if lat > plateau_lat * _JUMP_FACTOR:
                levels.append((plateau_ws, plateau_lat))
                plateau_lat = lat
            plateau_ws = ws
        # The final plateau is main memory, not a cache level: drop it.

        info = CacheInfo()
        info.levels = tuple(range(1, len(levels) + 1))
        for i, (ws, lat) in enumerate(levels, start=1):
            info.latencies[i] = lat
            info.sizes_kib[i] = ws // 1024
        # What the OS reports (sysfs cache indices in real libmctop).
        for spec in probe.machine.spec.caches:
            info.os_sizes_kib[spec.level] = spec.size_kib
        mctop.cache_info = info

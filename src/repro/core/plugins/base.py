"""Plugin interface for enriching MCTOP topologies."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.mctop import Mctop
from repro.hardware.probes import MeasurementContext


class Plugin(ABC):
    """One enrichment measurement pass.

    Plugins run after the basic topology is inferred and may annotate
    any structure of the :class:`Mctop` they receive.
    """

    #: registry key, e.g. ``"memory-latency"``
    name: str = ""

    def supported(self, probe: MeasurementContext) -> bool:
        """Whether this machine supports the plugin's measurements."""
        return True

    @abstractmethod
    def run(self, mctop: Mctop, probe: MeasurementContext) -> None:
        """Measure and annotate ``mctop`` in place."""

"""Memory-latency plugin (Section 4).

Creates a randomly connected linked list of cache lines inside a large
allocation on each memory node and measures the per-hop latency of
traversing it from each socket — the random pointer chase defeats the
prefetchers, so nearly every step is a real memory access.  In the
simulated substrate the chase is the probe's ``mem_latency_sample``.
"""

from __future__ import annotations

import numpy as np

from repro.core.mctop import Mctop
from repro.core.plugins.base import Plugin
from repro.hardware.probes import MeasurementContext


class MemLatencyPlugin(Plugin):
    name = "memory-latency"

    def __init__(self, repetitions: int = 15):
        self.repetitions = repetitions

    def run(self, mctop: Mctop, probe: MeasurementContext) -> None:
        for sid in mctop.socket_ids():
            rep_ctx = mctop.socket_get_contexts(sid)[0]
            lat = {}
            for node in mctop.node_ids():
                samples = [
                    probe.mem_latency_sample(rep_ctx, node)
                    for _ in range(self.repetitions)
                ]
                lat[node] = float(np.median(samples))
            mctop.sockets[sid].mem_latencies = lat
            # The local node must stay the measured minimum.
            best = min(lat, key=lat.get)
            if mctop.sockets[sid].local_node is None:
                mctop.sockets[sid].local_node = best

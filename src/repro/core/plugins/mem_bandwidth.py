"""Memory-bandwidth plugin (Section 4).

Allocates a large chunk of memory on each node and streams it
sequentially — first from a single thread (the latency-bound figure),
then from every core of a socket at once (the saturated figure the
MCTOP graphs display next to each node).  The cross-socket results also
give each interconnect link its bandwidth annotation.
"""

from __future__ import annotations

import numpy as np

from repro.core.mctop import Mctop
from repro.core.plugins.base import Plugin
from repro.hardware.probes import MeasurementContext


class MemBandwidthPlugin(Plugin):
    name = "memory-bandwidth"

    def __init__(self, repetitions: int = 5):
        self.repetitions = repetitions

    def run(self, mctop: Mctop, probe: MeasurementContext) -> None:
        for sid in mctop.socket_ids():
            all_ctxs = mctop.socket_get_contexts(sid)
            one_ctx = [all_ctxs[0]]
            saturated: dict[int, float] = {}
            single: dict[int, float] = {}
            for node in mctop.node_ids():
                saturated[node] = float(
                    np.median([
                        probe.mem_bandwidth_sample(all_ctxs, node)
                        for _ in range(self.repetitions)
                    ])
                )
                single[node] = float(
                    np.median([
                        probe.mem_bandwidth_sample(one_ctx, node)
                        for _ in range(self.repetitions)
                    ])
                )
            mctop.sockets[sid].mem_bandwidths = saturated
            mctop.sockets[sid].mem_bandwidths_single = single

        # Annotate the interconnect: the bandwidth of a link is what one
        # socket can stream from the other's local node.
        for (a, b), link in mctop.links.items():
            node_b = mctop.node_of_socket(b)
            node_a = mctop.node_of_socket(a)
            candidates = []
            if node_b is not None:
                candidates.append(mctop.mem_bandwidth(a, node_b))
            if node_a is not None:
                candidates.append(mctop.mem_bandwidth(b, node_a))
            if candidates:
                link.bandwidth = float(max(candidates))

"""Power plugin (Section 4, Intel RAPL only).

Reads the package/DRAM power at the paper's calibration points — idle,
fully loaded, one hardware context, the second context of one core —
while a memory-intensive workload runs (the bandwidth microbenchmark),
and fits the per-socket linear model the placement policies use.
"""

from __future__ import annotations

from repro.core.mctop import Mctop
from repro.core.plugins.base import Plugin
from repro.core.structures import PowerInfo
from repro.hardware.probes import MeasurementContext


class PowerPlugin(Plugin):
    name = "power"

    def supported(self, probe: MeasurementContext) -> bool:
        return probe.has_power_interface()

    def run(self, mctop: Mctop, probe: MeasurementContext) -> None:
        n_sockets = mctop.n_sockets
        all_ctxs = mctop.context_ids()
        core0 = mctop.core_get_contexts(mctop.core_ids()[0])

        idle = probe.power_sample([])
        full = probe.power_sample(all_ctxs, with_dram=True)
        one = probe.power_sample(core0[:1])
        second_delta = 0.0
        if len(core0) > 1:
            second_delta = probe.power_sample(core0[:2]) - probe.power_sample(core0[:1])

        # Fit the per-socket linear model from the calibration points.
        per_socket_idle = idle / n_sockets
        per_core_first = one - idle
        per_context_extra = second_delta
        full_no_dram = probe.power_sample(all_ctxs, with_dram=False)
        dram_per_socket = max((full - full_no_dram) / n_sockets, 0.0)

        mctop.power_info = PowerInfo(
            idle=idle,
            full=full,
            first_context=one,
            second_context_delta=second_delta,
            per_socket_idle=per_socket_idle,
            per_core_first=per_core_first,
            per_context_extra=per_context_extra,
            dram_active_per_socket=dram_per_socket,
        )

"""Enrichment plugins (Section 4).

The basic topology contains communication latencies only; these plugins
add memory latencies, memory bandwidths, cache information and power
measurements.  Users can register their own plugins with
:func:`register_plugin` — extensibility is one of MCTOP's design goals.
"""

from __future__ import annotations

from repro.errors import MctopError
from repro.core.plugins.base import Plugin
from repro.core.plugins.cache import CachePlugin
from repro.core.plugins.mem_bandwidth import MemBandwidthPlugin
from repro.core.plugins.mem_latency import MemLatencyPlugin
from repro.core.plugins.power import PowerPlugin

_REGISTRY: dict[str, type[Plugin]] = {}


def register_plugin(cls: type[Plugin]) -> type[Plugin]:
    """Register a plugin class under its ``name`` attribute."""
    _REGISTRY[cls.name] = cls
    return cls


def available_plugins() -> tuple[str, ...]:
    return tuple(_REGISTRY)


for _cls in (MemLatencyPlugin, MemBandwidthPlugin, CachePlugin, PowerPlugin):
    register_plugin(_cls)


def run_plugins(mctop, probe, names: tuple[str, ...]) -> None:
    """Run the named plugins in order, skipping unsupported ones.

    A plugin whose prerequisites the machine lacks (e.g. RAPL on AMD or
    SPARC) is skipped silently, like libmctop does; an unknown plugin
    name is an error.
    """
    for name in names:
        cls = _REGISTRY.get(name)
        if cls is None:
            raise MctopError(
                f"unknown plugin {name!r}; available: {available_plugins()}"
            )
        plugin = cls()
        if plugin.supported(probe):
            with probe.obs.span(f"plugin.{name}"):
                plugin.run(mctop, probe)
        else:
            probe.obs.instant("plugin.skipped", plugin=name)


__all__ = [
    "CachePlugin",
    "MemBandwidthPlugin",
    "MemLatencyPlugin",
    "Plugin",
    "PowerPlugin",
    "available_plugins",
    "register_plugin",
    "run_plugins",
]

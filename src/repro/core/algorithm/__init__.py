"""MCTOP-ALG: topology inference from latency measurements (Section 3)."""

from repro.core.algorithm.clustering import (
    ClusteringConfig,
    assign_cluster,
    cluster_summary,
    compute_cdf,
    find_clusters,
    normalize_table,
)
from repro.core.algorithm.components import (
    Component,
    ComponentHierarchy,
    HierarchyLevel,
    build_components,
)
from repro.core.algorithm.inference import (
    InferenceConfig,
    InferenceReport,
    infer_topology,
    try_infer_topology,
)
from repro.core.algorithm.lat_table import (
    LatencyTableConfig,
    LatencyTableResult,
    collect_latency_table,
)
from repro.core.algorithm.topology import (
    TopologyConfig,
    build_topology,
    detect_smt,
    find_socket_level,
)
from repro.core.algorithm.validation import (
    OsComparison,
    compare_with_os,
    validate_structure,
)

__all__ = [
    "ClusteringConfig",
    "Component",
    "ComponentHierarchy",
    "HierarchyLevel",
    "InferenceConfig",
    "InferenceReport",
    "LatencyTableConfig",
    "LatencyTableResult",
    "OsComparison",
    "TopologyConfig",
    "assign_cluster",
    "build_components",
    "build_topology",
    "cluster_summary",
    "collect_latency_table",
    "compare_with_os",
    "compute_cdf",
    "detect_smt",
    "find_clusters",
    "find_socket_level",
    "infer_topology",
    "normalize_table",
    "try_infer_topology",
    "validate_structure",
]

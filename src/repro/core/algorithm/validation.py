"""MCTOP-ALG output validation (Section 3.6).

Two mechanisms, as in the paper:

* structural validation — symmetry/uniformity invariants of the
  inferred topology (these are also enforced during component creation;
  here they can be re-run on any topology, e.g. one loaded from disk);
* comparison against the OS topology — if both views agree the result
  is certainly correct; when they disagree, the report says *which*
  measurements to re-run so the user can decide who is right (on the
  paper's Opteron it is the OS that is wrong).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.core.mctop import Mctop
from repro.hardware.os_view import OsTopology


def validate_structure(mctop: Mctop) -> None:
    """Raise :class:`ValidationError` on any structural inconsistency."""
    per_socket = [
        len(mctop.socket_get_contexts(s)) for s in mctop.socket_ids()
    ]
    if len(set(per_socket)) > 1:
        raise ValidationError(f"sockets hold unequal context counts {per_socket}")

    core_sizes = {
        len(mctop.core_get_contexts(c)) for c in mctop.core_ids()
    }
    if len(core_sizes) > 1:
        raise ValidationError(f"cores hold unequal context counts {core_sizes}")
    if mctop.has_smt and core_sizes == {1}:
        raise ValidationError("SMT reported but every core has one context")
    if not mctop.has_smt and core_sizes != {1}:
        raise ValidationError("no SMT reported but cores have multiple contexts")

    seen: set[int] = set()
    for s in mctop.socket_ids():
        ctxs = set(mctop.socket_get_contexts(s))
        if seen & ctxs:
            raise ValidationError("a context belongs to two sockets")
        seen |= ctxs
    if seen != set(mctop.context_ids()):
        raise ValidationError("sockets do not cover every context")

    n_sockets = mctop.n_sockets
    expect_links = n_sockets * (n_sockets - 1) // 2
    if len(mctop.links) != expect_links:
        raise ValidationError(
            f"{len(mctop.links)} interconnect entries, expected {expect_links}"
        )
    for (a, b), link in mctop.links.items():
        if link.latency <= mctop.groups[a].latency:
            raise ValidationError(
                f"cross-socket latency {link.latency} not above intra-socket"
            )

    # Latency levels must be strictly increasing.
    lats = [lv.latency for lv in mctop.levels]
    if lats != sorted(lats) or len(set(lats)) != len(lats):
        raise ValidationError(f"latency levels not strictly increasing: {lats}")


@dataclass
class OsComparison:
    """Result of comparing MCTOP with the OS view (Section 3.6)."""

    cores_match: bool
    sockets_match: bool
    nodes_match: bool
    mismatched_node_contexts: tuple[int, ...] = ()
    suggestions: tuple[str, ...] = field(default_factory=tuple)

    @property
    def all_match(self) -> bool:
        return self.cores_match and self.sockets_match and self.nodes_match

    def report(self) -> str:
        if self.all_match:
            return (
                "MCTOP matches the OS topology — the inferred topology is "
                "certainly correct."
            )
        lines = ["MCTOP and the OS topology disagree:"]
        if not self.cores_match:
            lines.append("  - core (SMT sibling) grouping differs")
        if not self.sockets_match:
            lines.append("  - socket membership differs")
        if not self.nodes_match:
            lines.append(
                f"  - local-node mapping differs for "
                f"{len(self.mismatched_node_contexts)} contexts"
            )
        lines.append("Suggested re-runs:")
        lines.extend(f"  * {s}" for s in self.suggestions)
        return "\n".join(lines)


def _partition(pairs: dict[int, int]) -> set[frozenset[int]]:
    """Group keys by value, as an unlabeled partition."""
    groups: dict[int, set[int]] = {}
    for k, v in pairs.items():
        groups.setdefault(v, set()).add(k)
    return {frozenset(g) for g in groups.values()}


def compare_with_os(mctop: Mctop, os_top: OsTopology) -> OsComparison:
    """Compare the inferred topology against what the OS reports.

    Core and socket groupings are compared as unlabeled partitions
    (ids are arbitrary); the node mapping is compared directly, because
    node ids are shared between both views (memory is allocated by node
    id) — this is exactly the check that catches the Opteron's
    misconfigured OS.
    """
    mc_cores = _partition({c: mctop.core_of_context(c) for c in mctop.context_ids()})
    os_cores = _partition({c: os_top.core_of[c] for c in mctop.context_ids()})
    cores_match = mc_cores == os_cores

    mc_sockets = _partition(
        {c: mctop.socket_of_context(c) for c in mctop.context_ids()}
    )
    os_sockets = _partition({c: os_top.socket_of[c] for c in mctop.context_ids()})
    sockets_match = mc_sockets == os_sockets

    mismatched = tuple(
        c
        for c in mctop.context_ids()
        if mctop.get_local_node(c) != os_top.node_of[c]
    )
    nodes_match = not mismatched

    suggestions: list[str] = []
    if not cores_match:
        suggestions.append(
            "re-run the context-to-context latency table with more repetitions"
        )
    if not sockets_match:
        suggestions.append(
            "re-run latency clustering with a larger gap threshold"
        )
    if not nodes_match:
        suggestions.append(
            "re-run the per-socket memory-latency measurements; if they are "
            "stable, the OS core-to-node mapping is misconfigured"
        )
    return OsComparison(
        cores_match=cores_match,
        sockets_match=sockets_match,
        nodes_match=nodes_match,
        mismatched_node_contexts=mismatched,
        suggestions=tuple(suggestions),
    )

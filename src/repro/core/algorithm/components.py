"""Step 3 of MCTOP-ALG: component creation (Section 3.3).

A component ``C_l`` of level ``l > 0`` is a set of level ``l-1``
components such that any two of them communicate with the latency of
level ``l`` *and* have identical normalized latencies towards every
other component.  Starting from singleton contexts (level 0), the
algorithm repeatedly groups components and reduces the latency table,
level by level (Figure 6, step 3).

Grouping stops at the first latency level whose relation does not
partition the components uniformly.  On hierarchical machines this
happens exactly at the cross-socket levels (on the paper's Opteron,
socket 0 is 197 cycles from socket 1 but 217/300 cycles from the
others, so the "identical rows" condition fails) — those levels become
interconnect levels, handled by the topology-creation step.  If it
happens *below* the socket level the measurements were inconsistent and
inference fails (Section 3.6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError


@dataclass
class Component:
    """One component of the hierarchy (level 0 components are contexts)."""

    level: int
    index: int  # per-level index
    children: tuple[int, ...]  # per-level indices of level-1 members
    contexts: tuple[int, ...]  # flattened hardware-context ids


@dataclass
class HierarchyLevel:
    """All components of one level plus the reduced latency table."""

    level: int
    latency: float  # 0.0 for level 0
    components: list[Component]
    reduced: np.ndarray  # component-to-component normalized latencies


@dataclass
class ComponentHierarchy:
    """Output of component creation.

    ``levels[0]`` holds the singleton contexts; the last level holds the
    largest groups that could be formed uniformly (the sockets, on every
    real machine).  ``unresolved_latencies`` are the cluster medians that
    did not form hierarchy levels — the cross-socket latency classes.
    """

    levels: list[HierarchyLevel]
    unresolved_latencies: list[float]

    @property
    def top(self) -> HierarchyLevel:
        return self.levels[-1]

    def level_with_context_count(self, count: int) -> HierarchyLevel | None:
        """The level whose components each hold ``count`` contexts."""
        for lvl in self.levels:
            sizes = {len(c.contexts) for c in lvl.components}
            if sizes == {count}:
                return lvl
        return None


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def groups(self) -> list[list[int]]:
        byroot: dict[int, list[int]] = {}
        for i in range(len(self.parent)):
            byroot.setdefault(self.find(i), []).append(i)
        return sorted(byroot.values(), key=lambda g: g[0])


def _try_group(reduced: np.ndarray, latency: float) -> list[list[int]] | None:
    """Group components communicating at ``latency``; None if non-uniform.

    Validity requires:  every component is in a group of >= 2; groups are
    complete (every in-group pair communicates at ``latency``); all
    groups have the same cardinality; and all members of a group have
    identical rows towards the outside.
    """
    n = reduced.shape[0]
    if n < 2:
        return None
    uf = _UnionFind(n)
    for i in range(n):
        for j in range(i + 1, n):
            if reduced[i, j] == latency:
                uf.union(i, j)
    groups = uf.groups()
    if len(groups) == n or len(groups) < 1:
        return None  # nothing grouped at this latency
    sizes = {len(g) for g in groups}
    if len(sizes) != 1 or sizes == {1}:
        return None
    for g in groups:
        gset = set(g)
        for a_i, a in enumerate(g):
            for b in g[a_i + 1:]:
                if reduced[a, b] != latency:
                    return None  # not a complete subgraph
            row = [reduced[a, o] for o in range(n) if o not in gset]
            if a == g[0]:
                first_row = row
            elif row != first_row:
                return None  # members disagree about the outside world
    return groups


def build_components(normalized: np.ndarray,
                     cluster_medians: list[float],
                     obs=None) -> ComponentHierarchy:
    """Run the classification-and-reduction loop of Section 3.3.

    With an :class:`~repro.obs.Observability`, every grouping attempt is
    counted and each accepted level leaves an instant event carrying its
    latency and component count.
    """
    n = normalized.shape[0]
    level0 = HierarchyLevel(
        level=0,
        latency=0.0,
        components=[Component(0, i, (), (i,)) for i in range(n)],
        reduced=normalized.copy(),
    )
    levels = [level0]
    ascending = sorted(m for m in cluster_medians if m > 0)
    unresolved: list[float] = []
    stopped = False

    for latency in ascending:
        current = levels[-1]
        if stopped or len(current.components) == 1:
            unresolved.append(latency)
            continue
        if obs is not None:
            obs.counter("components.grouping_attempts").inc()
        groups = _try_group(current.reduced, latency)
        if groups is None:
            # First non-uniform level: everything above is cross-socket
            # connectivity, not hierarchy.
            stopped = True
            unresolved.append(latency)
            if obs is not None:
                obs.instant("components.grouping_stopped", latency=latency)
            continue
        if obs is not None:
            obs.instant("components.level_formed", latency=latency,
                        n_groups=len(groups))
        comps: list[Component] = []
        for idx, g in enumerate(groups):
            ctxs = tuple(
                sorted(
                    ctx
                    for member in g
                    for ctx in current.components[member].contexts
                )
            )
            comps.append(Component(current.level + 1, idx, tuple(g), ctxs))
        reduced = _reduce_table(current.reduced, groups, latency)
        levels.append(
            HierarchyLevel(
                level=current.level + 1,
                latency=latency,
                components=comps,
                reduced=reduced,
            )
        )
    _validate_hierarchy(levels, n)
    if obs is not None:
        obs.gauge("components.hierarchy_levels").set(len(levels))
        obs.gauge("components.unresolved_latencies").set(len(unresolved))
    return ComponentHierarchy(levels=levels, unresolved_latencies=unresolved)


def _reduce_table(reduced: np.ndarray, groups: list[list[int]],
                  latency: float) -> np.ndarray:
    """Collapse grouped components into single rows/columns.

    The inter-group value is well-defined because ``_try_group`` checked
    row identity; we still verify it as a defence-in-depth invariant.
    """
    k = len(groups)
    out = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            values = {
                reduced[a, b]
                for a in groups[i]
                for b in groups[j]
            }
            if len(values) != 1:
                raise InferenceError(
                    f"groups {i} and {j} have ambiguous latencies {values} — "
                    "spurious measurements were clustered incorrectly"
                )
            out[i, j] = out[j, i] = values.pop()
    return out


def _validate_hierarchy(levels: list[HierarchyLevel], n_contexts: int) -> None:
    """The Section 3.6 invariants, checked on every build."""
    for lvl in levels[1:]:
        sizes = {len(c.children) for c in lvl.components}
        if len(sizes) != 1:
            raise InferenceError(
                f"level {lvl.level} components have unequal sizes {sizes}"
            )
        seen: set[int] = set()
        for comp in lvl.components:
            overlap = seen & set(comp.contexts)
            if overlap:
                raise InferenceError(
                    f"contexts {sorted(overlap)} appear in two level-{lvl.level} "
                    "components"
                )
            seen.update(comp.contexts)
        if seen != set(range(n_contexts)):
            raise InferenceError(
                f"level {lvl.level} does not cover every hardware context"
            )

"""End-to-end MCTOP-ALG orchestration.

``infer_topology`` runs the four steps of Section 3 — latency table,
clustering + normalization, component creation, topology creation —
followed by the Section 4 enrichment plugins and the Section 3.6
validation, and returns a fully annotated :class:`~repro.core.mctop.Mctop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MctopError
from repro.core.algorithm.clustering import (
    ClusteringConfig,
    find_clusters,
    normalize_table,
)
from repro.core.algorithm.components import build_components
from repro.core.algorithm.lat_table import LatencyTableConfig, collect_latency_table
from repro.core.algorithm.topology import TopologyConfig, build_topology
from repro.core.algorithm.validation import (
    OsComparison,
    compare_with_os,
    validate_structure,
)
from repro.core.mctop import Mctop, Provenance
from repro.hardware.machine import Machine
from repro.hardware.noise import NoiseProfile
from repro.hardware.probes import MeasurementContext


@dataclass(frozen=True)
class InferenceConfig:
    """All knobs of one inference run."""

    table: LatencyTableConfig = field(default_factory=LatencyTableConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    plugins: tuple[str, ...] = ("memory-latency", "memory-bandwidth",
                                "cache", "power")
    validate: bool = True


@dataclass
class InferenceReport:
    """Everything a run produced besides the topology itself."""

    os_comparison: OsComparison | None = None
    samples_taken: int = 0
    retried_pairs: int = 0
    tsc_overhead: float = 0.0


def _as_probe(
    target: Machine | MeasurementContext,
    seed: int,
    noise: NoiseProfile | None,
    solo: bool,
) -> MeasurementContext:
    if isinstance(target, MeasurementContext):
        return target
    return MeasurementContext(target, noise=noise, seed=seed, solo=solo)


def infer_topology(
    target: Machine | MeasurementContext,
    seed: int = 0,
    config: InferenceConfig | None = None,
    noise: NoiseProfile | None = None,
    solo: bool = True,
    name: str | None = None,
    report: InferenceReport | None = None,
) -> Mctop:
    """Run MCTOP-ALG against a machine (or an existing probe context).

    Parameters mirror libmctop's command line: the seed makes the run
    reproducible, ``noise`` selects the measurement environment and
    ``solo=False`` simulates other applications running concurrently
    (which the paper warns against).

    Raises :class:`~repro.errors.MctopError` subclasses when the
    measurements cannot be turned into a consistent topology, matching
    libmctop's "print an error and ask the user to retry" behaviour.
    """
    config = config or InferenceConfig()
    probe = _as_probe(target, seed, noise, solo)
    topo_name = name or probe.machine.spec.name

    # Step 1: the N x N latency table.
    table_result = collect_latency_table(probe, config.table)

    # Step 2: clustering and normalization.
    clusters = find_clusters(table_result.table, config.clustering)
    normalized, _ = normalize_table(table_result.table, clusters)

    # Step 3: component creation.
    hierarchy = build_components(
        normalized, [c.median for c in clusters]
    )

    # Step 4: topology creation (incl. SMT detection, local nodes).
    provenance = Provenance(
        machine=probe.machine.spec.name,
        seed=seed,
        samples_taken=table_result.samples_taken,
        repetitions=table_result.repetitions,
    )
    mctop = build_topology(
        probe,
        hierarchy,
        clusters,
        normalized,
        name=topo_name,
        provenance=provenance,
        cfg=config.topology,
    )

    # Section 4: enrichment plugins.
    from repro.core.plugins import run_plugins

    run_plugins(mctop, probe, config.plugins)

    # Section 3.6: validation.
    if config.validate:
        validate_structure(mctop)
        comparison = compare_with_os(mctop, probe.os)
        if report is not None:
            report.os_comparison = comparison
    if report is not None:
        report.samples_taken = table_result.samples_taken
        report.retried_pairs = table_result.retried_pairs
        report.tsc_overhead = table_result.tsc_overhead
    return mctop


def try_infer_topology(*args, **kwargs) -> Mctop | None:
    """``infer_topology`` that returns None instead of raising.

    Convenience for retry loops: the paper's tool asks the user to
    simply re-run on failure, so callers often want
    ``while (m := try_infer_topology(machine, seed=s)) is None: s += 1``.
    """
    try:
        return infer_topology(*args, **kwargs)
    except MctopError:
        return None

"""End-to-end MCTOP-ALG orchestration.

``infer_topology`` runs the four steps of Section 3 — latency table,
clustering + normalization, component creation, topology creation —
followed by the Section 4 enrichment plugins and the Section 3.6
validation, and returns a fully annotated :class:`~repro.core.mctop.Mctop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MctopError
from repro.core.algorithm.clustering import (
    ClusteringConfig,
    find_clusters,
    normalize_table,
)
from repro.core.algorithm.components import build_components
from repro.core.algorithm.lat_table import LatencyTableConfig, collect_latency_table
from repro.core.algorithm.topology import TopologyConfig, build_topology
from repro.core.algorithm.validation import (
    OsComparison,
    compare_with_os,
    validate_structure,
)
from repro.core.mctop import Mctop, Provenance
from repro.hardware.machine import Machine
from repro.hardware.noise import NoiseProfile
from repro.hardware.probes import MeasurementContext
from repro.obs import Observability


@dataclass(frozen=True)
class InferenceConfig:
    """All knobs of one inference run."""

    table: LatencyTableConfig = field(default_factory=LatencyTableConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    plugins: tuple[str, ...] = ("memory-latency", "memory-bandwidth",
                                "cache", "power")
    validate: bool = True


@dataclass
class InferenceReport:
    """Everything a run produced besides the topology itself.

    The observability fields surface what used to be internal to the
    algorithm steps: how many spurious samples were discarded, how many
    latency clusters the CDF produced, and how far the raw measurements
    sat from their cluster medians (the normalization shift).  ``obs``
    is the full :class:`~repro.obs.Observability` of the run — its
    registry holds every instrument, its tracer the per-step spans.
    """

    os_comparison: OsComparison | None = None
    samples_taken: int = 0
    retried_pairs: int = 0
    tsc_overhead: float = 0.0
    discarded_samples: int = 0
    n_clusters: int = 0
    cluster_medians: tuple[float, ...] = ()
    normalization_shift_mean: float = 0.0
    normalization_shift_max: float = 0.0
    obs: "Observability | None" = None


def _as_probe(
    target: Machine | MeasurementContext,
    seed: int,
    noise: NoiseProfile | None,
    solo: bool,
    obs: Observability | None,
) -> MeasurementContext:
    if isinstance(target, MeasurementContext):
        return target
    return MeasurementContext(target, noise=noise, seed=seed, solo=solo,
                              obs=obs)


def infer_topology(
    target: Machine | MeasurementContext,
    seed: int = 0,
    config: InferenceConfig | None = None,
    noise: NoiseProfile | None = None,
    solo: bool = True,
    name: str | None = None,
    report: InferenceReport | None = None,
    obs: Observability | None = None,
) -> Mctop:
    """Run MCTOP-ALG against a machine (or an existing probe context).

    Parameters mirror libmctop's command line: the seed makes the run
    reproducible, ``noise`` selects the measurement environment and
    ``solo=False`` simulates other applications running concurrently
    (which the paper warns against).  ``obs`` optionally supplies the
    :class:`~repro.obs.Observability` the run traces into (when
    ``target`` is already a probe, the probe's own container is used);
    the resulting topology's provenance carries a deterministic trace
    summary either way.

    Raises :class:`~repro.errors.MctopError` subclasses when the
    measurements cannot be turned into a consistent topology, matching
    libmctop's "print an error and ask the user to retry" behaviour.
    """
    config = config or InferenceConfig()
    probe = _as_probe(target, seed, noise, solo, obs)
    obs = probe.obs
    topo_name = name or probe.machine.spec.name

    with obs.span("infer", machine=probe.machine.spec.name, seed=seed):
        # Step 1: the N x N latency table (spans under lat_table.*).
        table_result = collect_latency_table(probe, config.table)

        # Step 2: clustering and normalization.
        with obs.span("infer.clustering"):
            clusters = find_clusters(
                table_result.table, config.clustering, obs=obs
            )
            normalized, _ = normalize_table(
                table_result.table, clusters, obs=obs
            )

        # Step 3: component creation.
        with obs.span("infer.components"):
            hierarchy = build_components(
                normalized, [c.median for c in clusters], obs=obs
            )

        # Step 4: topology creation (incl. SMT detection, local nodes).
        provenance = Provenance(
            machine=probe.machine.spec.name,
            seed=seed,
            samples_taken=table_result.samples_taken,
            repetitions=table_result.repetitions,
        )
        with obs.span("infer.topology"):
            mctop = build_topology(
                probe,
                hierarchy,
                clusters,
                normalized,
                name=topo_name,
                provenance=provenance,
                cfg=config.topology,
            )

        # Section 4: enrichment plugins.
        from repro.core.plugins import run_plugins

        with obs.span("infer.plugins", plugins=list(config.plugins)):
            run_plugins(mctop, probe, config.plugins)

        # Section 3.6: validation.
        comparison = None
        if config.validate:
            with obs.span("infer.validation"):
                validate_structure(mctop)
                comparison = compare_with_os(mctop, probe.os)
            obs.gauge("validation.os_match").set(
                1.0 if comparison.all_match else 0.0
            )

    # The provenance trace summary is deterministic (counts only, no
    # wall-clock durations) so description files stay reproducible.
    provenance.trace_summary = obs.summary()
    shift = obs.registry.get("clustering.normalization_shift")
    if report is not None:
        report.os_comparison = comparison
        report.samples_taken = table_result.samples_taken
        report.retried_pairs = table_result.retried_pairs
        report.tsc_overhead = table_result.tsc_overhead
        report.discarded_samples = table_result.discarded_samples
        report.n_clusters = len(clusters)
        report.cluster_medians = tuple(c.median for c in clusters)
        if shift is not None and shift.count:
            report.normalization_shift_mean = shift.mean
            report.normalization_shift_max = shift.max
        report.obs = obs
    return mctop


def try_infer_topology(*args, **kwargs) -> Mctop | None:
    """``infer_topology`` that returns None instead of raising.

    Convenience for retry loops: the paper's tool asks the user to
    simply re-run on failure, so callers often want
    ``while (m := try_infer_topology(machine, seed=s)) is None: s += 1``.
    """
    try:
        return infer_topology(*args, **kwargs)
    except MctopError:
        return None

"""Step 2 of MCTOP-ALG: latency clustering and table normalization.

The measured latency table contains a small number of underlying
relations (same context, SMT siblings, same socket, each cross-socket
distance) smeared by per-pair variation.  MCTOP-ALG recovers them from
the cumulative distribution function of the values: each plateau of the
CDF is a cluster, represented by a (min, median, max) triplet
(Figure 6, step 2a), and the table is normalized by replacing every
value with its cluster's median (step 2b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError
from repro.core.structures import LatencyCluster


@dataclass(frozen=True)
class ClusteringConfig:
    """Gap-detection knobs.

    A new cluster starts where consecutive sorted values are separated
    by more than ``max(abs_gap, rel_gap * value)``.  The defaults keep
    the paper's platforms comfortably apart (the closest real clusters
    are Opteron's 197 vs 217 cross-socket levels, >= 14 cycles apart
    after jitter) while riding over realistic per-pair spread (Ivy's
    intra-socket 88..140 range is dense, so its internal gaps stay small).
    """

    abs_gap: float = 10.0
    rel_gap: float = 0.06
    max_clusters: int = 24  # sanity bound; more means hopeless noise
    min_cluster_fraction: float = 0.0005  # tiny clusters signal spurious data


def compute_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the latency values (Figure 6, step 2a).

    Returns (sorted values, cumulative fraction <= value).
    """
    flat = np.sort(np.asarray(values, dtype=float).ravel())
    if flat.size == 0:
        raise ClusteringError("cannot build a CDF from no values")
    cdf = np.arange(1, flat.size + 1) / flat.size
    return flat, cdf


def find_clusters(
    values: np.ndarray,
    cfg: ClusteringConfig | None = None,
    obs=None,
) -> tuple[LatencyCluster, ...]:
    """Detect the latency clusters of a table.

    ``values`` is typically the full N x N table (the zero diagonal
    forms the first cluster, matching the paper's "4 clusters" for Ivy).
    When an :class:`~repro.obs.Observability` is given, the cluster
    count and per-cluster widths are recorded in its registry.
    """
    cfg = cfg or ClusteringConfig()
    flat, _ = compute_cdf(values)
    boundaries = [0]
    for i in range(1, flat.size):
        gap = flat[i] - flat[i - 1]
        if gap > max(cfg.abs_gap, cfg.rel_gap * flat[i - 1]):
            boundaries.append(i)
    boundaries.append(flat.size)

    clusters: list[LatencyCluster] = []
    for lo_i, hi_i in zip(boundaries, boundaries[1:]):
        chunk = flat[lo_i:hi_i]
        clusters.append(
            LatencyCluster(
                lo=float(chunk[0]),
                median=float(np.median(chunk)),
                hi=float(chunk[-1]),
            )
        )

    if len(clusters) > cfg.max_clusters:
        raise ClusteringError(
            f"found {len(clusters)} latency clusters (> {cfg.max_clusters}); "
            "measurements are too noisy — rerun solo (Section 3.6)"
        )
    # A cluster backed by a vanishing number of samples is almost surely
    # a handful of spurious measurements that survived the median.
    min_count = max(1, int(cfg.min_cluster_fraction * flat.size))
    for cluster, (lo_i, hi_i) in zip(clusters, zip(boundaries, boundaries[1:])):
        if hi_i - lo_i < min_count:
            raise ClusteringError(
                f"cluster around {cluster.median:.0f} cycles holds only "
                f"{hi_i - lo_i} values — spurious measurements detected"
            )
    if obs is not None:
        obs.gauge("clustering.n_clusters").set(len(clusters))
        width_hist = obs.histogram("clustering.cluster_width")
        size_hist = obs.histogram("clustering.cluster_size")
        for cluster, (lo_i, hi_i) in zip(
            clusters, zip(boundaries, boundaries[1:])
        ):
            width_hist.observe(cluster.hi - cluster.lo)
            size_hist.observe(hi_i - lo_i)
    return tuple(clusters)


def assign_cluster(value: float, clusters: tuple[LatencyCluster, ...]) -> int:
    """Index of the cluster a value belongs to (nearest median if outside
    every [lo, hi] range, which can happen for values measured later,
    e.g. by plugins)."""
    for i, c in enumerate(clusters):
        if c.contains(value):
            return i
    return int(
        np.argmin([abs(value - c.median) for c in clusters])
    )


def normalize_table(
    table: np.ndarray,
    clusters: tuple[LatencyCluster, ...],
    obs=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Replace every value by its cluster median (Figure 6, step 2b).

    Returns ``(normalized, cluster_index)`` tables.  The diagonal is
    forced to 0 / cluster 0.  With an observability container the
    normalization shift (|raw - median| of every off-diagonal entry) is
    recorded — a direct readout of how much smear the clustering
    absorbed.
    """
    n = table.shape[0]
    normalized = np.empty_like(table)
    index = np.empty((n, n), dtype=int)
    medians = np.array([c.median for c in clusters])
    for i in range(n):
        for j in range(n):
            k = assign_cluster(table[i, j], clusters)
            index[i, j] = k
            normalized[i, j] = medians[k]
    np.fill_diagonal(normalized, 0.0)
    np.fill_diagonal(index, 0)
    if obs is not None and n > 1:
        off_diag = ~np.eye(n, dtype=bool)
        shifts = np.abs(table - normalized)[off_diag]
        obs.histogram("clustering.normalization_shift").observe_bulk(
            shifts.size,
            float(shifts.sum()),
            float((shifts**2).sum()),
            float(shifts.min()),
            float(shifts.max()),
        )
    return normalized, index


def cluster_summary(clusters: tuple[LatencyCluster, ...]) -> str:
    """Human-readable cluster triplets (what libmctop prints)."""
    rows = [
        f"  cluster {i}: min {c.lo:7.1f}  median {c.median:7.1f}  max {c.hi:7.1f}"
        for i, c in enumerate(clusters)
    ]
    return "\n".join([f"{len(clusters)} latency clusters:"] + rows)

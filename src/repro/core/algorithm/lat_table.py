"""Step 1 of MCTOP-ALG: collecting the context-to-context latency table.

Two simulated threads move from hardware context to hardware context and
fill the N x N table with lock-step CAS measurements (Figure 5).  All of
the paper's stabilization machinery is implemented:

* the rdtsc read overhead is estimated once and subtracted from every
  sample;
* both cores are warmed up until back-to-back spin loops stop getting
  faster (defeating DVFS);
* every pair is sampled ``repetitions`` times; the median is kept and,
  when the standard deviation exceeds ``stdev_threshold`` x median, the
  pair is re-measured with a relaxed threshold (up to
  ``max_stdev_threshold``), after which a :class:`MeasurementError` is
  raised;
* only the upper triangle is measured — the topology is symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MeasurementError
from repro.hardware.probes import MeasurementContext


@dataclass(frozen=True)
class LatencyTableConfig:
    """Knobs of the measurement phase (paper defaults in brackets)."""

    repetitions: int = 75  # [2000] samples per pair; the simulated
    # probe needs far fewer for a stable median, and benches can raise it
    stdev_threshold: float = 0.07  # [7%] of the median
    max_stdev_threshold: float = 0.14  # [14%]
    stdev_floor: float = 3.0  # cycles; absolute tolerance for tiny medians
    spurious_deviation: float = 0.25  # of the median: beyond it, a sample
    # is a spurious measurement and is discarded before the stdev check
    max_discard_fraction: float = 0.2  # more discards than this => retry
    warm_up: bool = True
    warmup_loop_iters: int = 50_000


@dataclass
class LatencyTableResult:
    """The measured table plus collection statistics."""

    table: np.ndarray  # N x N medians, cycles; diagonal is 0
    repetitions: int
    samples_taken: int
    retried_pairs: int
    tsc_overhead: float
    per_pair_stdev: np.ndarray = field(repr=False, default=None)


def _measure_pair(
    probe: MeasurementContext,
    x: int,
    y: int,
    overhead: float,
    cfg: LatencyTableConfig,
) -> tuple[float, float, int]:
    """Median latency for one context pair; returns (median, stdev, retries)."""
    threshold = cfg.stdev_threshold
    retries = 0
    while True:
        line = probe.fresh_line()
        samples = np.empty(cfg.repetitions)
        for i in range(cfg.repetitions):
            samples[i] = probe.sample_pair_latency(x, y, line) - overhead
        median = float(np.median(samples))
        # Discard spurious measurements (interrupt-style spikes) the way
        # libmctop does before judging stability (Section 3.5).
        limit_dev = max(cfg.spurious_deviation * abs(median), 12.0)
        kept = samples[np.abs(samples - median) <= limit_dev]
        stdev = float(np.std(kept))
        discarded = cfg.repetitions - kept.size
        limit = max(threshold * abs(median), cfg.stdev_floor)
        if stdev <= limit and discarded <= cfg.max_discard_fraction * cfg.repetitions:
            return median, stdev, retries
        retries += 1
        threshold *= 2.0
        if threshold > cfg.max_stdev_threshold:
            raise MeasurementError(
                f"pair ({x}, {y}) never stabilized: stdev {stdev:.1f} vs "
                f"median {median:.1f} after {retries} retries — rerun "
                "libmctop solo on the machine, possibly with different "
                "settings (Section 3.5)"
            )


def collect_latency_table(
    probe: MeasurementContext,
    cfg: LatencyTableConfig | None = None,
) -> LatencyTableResult:
    """Fill the N x N latency table (Figure 6, step 1)."""
    cfg = cfg or LatencyTableConfig()
    n = probe.n_hw_contexts()
    table = np.zeros((n, n))
    stdevs = np.zeros((n, n))
    overhead = probe.estimate_tsc_overhead()
    start_samples = probe.samples_taken
    retried = 0

    warmed: set[int] = set()
    for x in range(n):
        if cfg.warm_up and x not in warmed:
            probe.warm_up(x, cfg.warmup_loop_iters)
            warmed.add(x)
        for y in range(x + 1, n):
            if cfg.warm_up and y not in warmed:
                probe.warm_up(y, cfg.warmup_loop_iters)
                warmed.add(y)
            median, stdev, retries = _measure_pair(probe, x, y, overhead, cfg)
            retried += 1 if retries else 0
            table[x, y] = table[y, x] = max(median, 0.0)
            stdevs[x, y] = stdevs[y, x] = stdev

    return LatencyTableResult(
        table=table,
        repetitions=cfg.repetitions,
        samples_taken=probe.samples_taken - start_samples,
        retried_pairs=retried,
        tsc_overhead=overhead,
        per_pair_stdev=stdevs,
    )

"""Step 1 of MCTOP-ALG: collecting the context-to-context latency table.

Two simulated threads move from hardware context to hardware context and
fill the N x N table with lock-step CAS measurements (Figure 5).  All of
the paper's stabilization machinery is implemented:

* the rdtsc read overhead is estimated once and subtracted from every
  sample;
* both cores are warmed up until back-to-back spin loops stop getting
  faster (defeating DVFS);
* every pair is sampled ``repetitions`` times; the median is kept and,
  when the standard deviation exceeds ``stdev_threshold`` x median, the
  pair is re-measured with a relaxed threshold (up to
  ``max_stdev_threshold``), after which a :class:`MeasurementError` is
  raised;
* only the upper triangle is measured — the topology is symmetric.

Collection comes in two sampling schemes:

``sequential``
    The original engine: one RNG stream threaded through every pair in
    measurement order.  This is what the golden-topology fixtures pin,
    so it stays the default.  Within it, ``vectorized=True`` fetches
    each attempt's samples as one array from
    :meth:`MeasurementContext.sample_pair_latencies` (bit-identical to
    the scalar loop, several times faster).

``pair``
    The order-independent scheme of :mod:`repro.hardware.probes`: every
    (pair, attempt) gets its own seeded substream and the DVFS state is
    frozen at its post-warm-up snapshot, so pairs can be measured in
    any order by any number of workers.  ``jobs=N`` fans chunked pair
    lists out over ``concurrent.futures`` processes and merges the
    records deterministically — the table is bit-identical for any
    ``jobs`` value and for scalar vs vectorized sampling.

The collection loop is fully instrumented through the probe's
:class:`~repro.obs.Observability`: samples taken, retried pairs,
discarded spurious samples and per-pair stability all land in the
metrics registry, and the whole step runs under a ``lat_table.collect``
span with an instant event per retried pair.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field, fields
from typing import Any

import numpy as np

from repro.errors import ConfigError, MeasurementError
from repro.hardware.probes import MeasurementContext, PairProbeSpec, PairSampler

#: Section 3.2's measurement parameters, machine readable: libmctop
#: takes 2000 samples per pair and accepts a pair once the standard
#: deviation is within 7% of the median, doubling the threshold on
#: every retry up to 14%.  The simulated probe needs far fewer samples
#: for a stable median, so :class:`LatencyTableConfig`'s defaults
#: deviate from the paper; ``LatencyTableConfig.paper()`` restores the
#: paper's exact values.
PAPER_DEFAULTS = {
    "repetitions": 2000,
    "stdev_threshold": 0.07,
    "max_stdev_threshold": 0.14,
}

_SAMPLING_SCHEMES = ("auto", "sequential", "pair")

#: config knobs that select *how* the table is computed but cannot
#: change a single bit of it — excluded from cache digests.
_EXECUTION_ONLY_FIELDS = ("vectorized", "jobs")


@dataclass(frozen=True)
class LatencyTableConfig:
    """Knobs of the measurement phase.

    Library defaults are tuned for the simulated probe (a stable median
    needs far fewer samples than real hardware); the paper's own values
    live in :data:`PAPER_DEFAULTS` and are available through
    :meth:`paper`.

    ``sampling`` selects the scheme (see the module docstring);
    ``"auto"`` resolves to ``"pair"`` whenever ``jobs > 1`` and to the
    golden-pinned ``"sequential"`` otherwise.  ``vectorized`` and
    ``jobs`` only change how fast the same table is produced, never its
    contents, and are therefore excluded from cache digests
    (:meth:`cache_key_dict`).
    """

    repetitions: int = 75  # samples per pair; benches can raise it
    stdev_threshold: float = 0.07  # fraction of the median
    max_stdev_threshold: float = 0.14  # retry ceiling
    stdev_floor: float = 3.0  # cycles; absolute tolerance for tiny medians
    spurious_deviation: float = 0.25  # of the median: beyond it, a sample
    # is a spurious measurement and is discarded before the stdev check
    max_discard_fraction: float = 0.2  # more discards than this => retry
    warm_up: bool = True
    warmup_loop_iters: int = 50_000
    vectorized: bool = True  # batch each attempt's samples into one array
    jobs: int = 1  # worker processes; > 1 implies pair sampling
    sampling: str = "auto"  # "auto" | "sequential" | "pair"

    def __post_init__(self) -> None:
        if self.sampling not in _SAMPLING_SCHEMES:
            raise ConfigError(
                f"unknown sampling scheme {self.sampling!r}; "
                f"expected one of {_SAMPLING_SCHEMES}"
            )
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise ConfigError(f"jobs must be a positive integer, got {self.jobs!r}")
        if self.jobs > 1 and self.sampling == "sequential":
            raise ConfigError(
                "jobs > 1 requires the order-independent 'pair' sampling "
                "scheme; the 'sequential' scheme threads one RNG stream "
                "through every pair and cannot be parallelized"
            )

    @classmethod
    def paper(cls, **overrides) -> "LatencyTableConfig":
        """The exact Section 3.2 configuration (2000 reps, 7%..14%)."""
        return cls(**{**PAPER_DEFAULTS, **overrides})

    def effective_sampling(self) -> str:
        """The scheme ``"auto"`` resolves to for this configuration."""
        if self.sampling == "auto":
            return "pair" if self.jobs > 1 else "sequential"
        return self.sampling

    # ------------------------------------------------------- dict round-trip
    def to_dict(self) -> dict[str, Any]:
        """All knobs as a plain JSON-compatible dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LatencyTableConfig":
        """Inverse of :meth:`to_dict`; unknown keys are a :class:`ConfigError`."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown LatencyTableConfig key(s): {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}"
            )
        return cls(**data)

    def cache_key_dict(self) -> dict[str, Any]:
        """The semantic knobs only — what a result cache should digest.

        Drops :data:`_EXECUTION_ONLY_FIELDS` and resolves ``"auto"``
        sampling, so e.g. ``jobs=4`` and ``jobs=8`` (same table, merged
        in the same order) share one cache entry, while ``sequential``
        vs ``pair`` (genuinely different tables) do not.
        """
        doc = self.to_dict()
        for key in _EXECUTION_ONLY_FIELDS:
            del doc[key]
        doc["sampling"] = self.effective_sampling()
        return doc


@dataclass
class LatencyTableResult:
    """The measured table plus collection statistics."""

    table: np.ndarray  # N x N medians, cycles; diagonal is 0
    repetitions: int
    samples_taken: int
    retried_pairs: int
    tsc_overhead: float
    discarded_samples: int = 0
    per_pair_stdev: np.ndarray = field(repr=False, default=None)


def _judge_attempt(
    samples: np.ndarray, threshold: float, cfg: LatencyTableConfig
) -> tuple[float, float, int, bool]:
    """Stability verdict on one attempt's samples.

    Returns ``(median, stdev, discarded, accepted)`` using exactly the
    numpy operations the original engine used — both sampling schemes
    and both vectorized modes share this single code path.
    """
    median = float(np.median(samples))
    # Discard spurious measurements (interrupt-style spikes) the way
    # libmctop does before judging stability (Section 3.5).
    limit_dev = max(cfg.spurious_deviation * abs(median), 12.0)
    kept = samples[np.abs(samples - median) <= limit_dev]
    stdev = float(np.std(kept))
    discarded = cfg.repetitions - kept.size
    limit = max(threshold * abs(median), cfg.stdev_floor)
    accepted = (
        stdev <= limit
        and discarded <= cfg.max_discard_fraction * cfg.repetitions
    )
    return median, stdev, discarded, accepted


def _measure_pair(
    probe: MeasurementContext,
    x: int,
    y: int,
    overhead: float,
    cfg: LatencyTableConfig,
) -> tuple[float, float, int, int]:
    """Median latency for one context pair (sequential scheme).

    Returns ``(median, stdev, retries, discarded)`` where ``discarded``
    counts the spurious samples thrown away across all attempts.
    """
    threshold = cfg.stdev_threshold
    retries = 0
    total_discarded = 0
    while True:
        if cfg.vectorized:
            line = probe.fresh_line()
            samples = probe.sample_pair_latencies(
                x, y, cfg.repetitions, line_id=line
            ) - overhead
        else:
            line = probe.fresh_line()
            samples = np.empty(cfg.repetitions)
            for i in range(cfg.repetitions):
                samples[i] = probe.sample_pair_latency(x, y, line) - overhead
        median, stdev, discarded, accepted = _judge_attempt(
            samples, threshold, cfg
        )
        total_discarded += discarded
        if accepted:
            return median, stdev, retries, total_discarded
        retries += 1
        threshold *= 2.0
        if threshold > cfg.max_stdev_threshold:
            probe.obs.instant(
                "lat_table.pair_failed", pair=[int(x), int(y)],
                stdev=stdev, median=median,
            )
            raise MeasurementError(
                f"pair ({x}, {y}) never stabilized: stdev {stdev:.1f} vs "
                f"median {median:.1f} after {retries} retries — rerun "
                "libmctop solo on the machine, possibly with different "
                "settings (Section 3.5)"
            )


# ------------------------------------------------------------------------
# Pair-seeded scheme: per-pair records, worker fan-out, deterministic merge.
# ------------------------------------------------------------------------


def _measure_pair_seeded(
    sampler: PairSampler,
    x: int,
    y: int,
    overhead: float,
    cfg: LatencyTableConfig,
) -> dict[str, Any]:
    """One pair under the pair-seeded scheme, as a plain record.

    Never raises: a pair that cannot stabilize is returned as a
    ``failed`` record so worker processes hand failures back to the
    parent, which reports them deterministically in pair order.
    """
    threshold = cfg.stdev_threshold
    retries = 0
    total_discarded = 0
    samples_taken = 0
    while True:
        raw = sampler.sample_attempt(
            x, y, cfg.repetitions, attempt=retries, vectorized=cfg.vectorized
        )
        samples_taken += cfg.repetitions
        samples = raw - overhead
        median, stdev, discarded, accepted = _judge_attempt(
            samples, threshold, cfg
        )
        total_discarded += discarded
        if accepted:
            return {
                "pair": (x, y),
                "median": median,
                "stdev": stdev,
                "retries": retries,
                "discarded": total_discarded,
                "samples": samples_taken,
                "failed": False,
            }
        retries += 1
        threshold *= 2.0
        if threshold > cfg.max_stdev_threshold:
            return {
                "pair": (x, y),
                "median": median,
                "stdev": stdev,
                "retries": retries,
                "discarded": total_discarded,
                "samples": samples_taken,
                "failed": True,
            }


def _measure_pairs_chunk(
    spec: PairProbeSpec,
    pairs: list[tuple[int, int]],
    overhead: float,
    cfg: LatencyTableConfig,
) -> dict[str, Any]:
    """Worker entry point: measure a chunk of pairs independently.

    Module level so :mod:`concurrent.futures` can pickle it; builds one
    :class:`PairSampler` per worker invocation and returns plain
    records for the parent to merge, plus the chunk's wall time so the
    parent can stitch one sub-trace span per chunk into its tracer.
    """
    import time

    start = time.perf_counter()
    sampler = PairSampler(spec)
    records = [
        _measure_pair_seeded(sampler, x, y, overhead, cfg) for x, y in pairs
    ]
    return {
        "records": records,
        "dur_us": (time.perf_counter() - start) * 1e6,
        "n_pairs": len(pairs),
    }


def _chunk_pairs(
    pairs: list[tuple[int, int]], jobs: int
) -> list[list[tuple[int, int]]]:
    """Contiguous chunks, a few per worker for load balancing."""
    chunk = max(1, -(-len(pairs) // (jobs * 4)))
    return [pairs[i:i + chunk] for i in range(0, len(pairs), chunk)]


def _collect_pair_seeded(
    probe: MeasurementContext, cfg: LatencyTableConfig
) -> LatencyTableResult:
    """The pair-seeded collection loop, optionally fanned out.

    Warm-up and rdtsc calibration run sequentially on the parent probe
    (they consume its shared RNG stream); sampling then proceeds from
    the frozen :meth:`~MeasurementContext.batch_spec` snapshot, in
    process when ``jobs=1`` or over a process pool otherwise.  Records
    are merged in pair order, so metrics, retry events and the first
    reported failure are identical for every ``jobs`` value.
    """
    obs = probe.obs
    n = probe.n_hw_contexts()
    table = np.zeros((n, n))
    stdevs = np.zeros((n, n))
    start_samples = probe.samples_taken
    retried = 0
    discarded_total = 0

    pair_counter = obs.counter("lat_table.pairs")
    retry_counter = obs.counter("lat_table.retries")
    discard_counter = obs.counter("lat_table.discarded_samples")
    discard_hist = obs.histogram("lat_table.discard_fraction")
    stdev_hist = obs.histogram("lat_table.pair_stdev")

    with obs.span("lat_table.collect", n_contexts=n,
                  repetitions=cfg.repetitions):
        overhead = probe.estimate_tsc_overhead()
        obs.gauge("lat_table.tsc_overhead").set(overhead)

        if cfg.warm_up:
            for ctx in range(n):
                probe.warm_up(ctx, cfg.warmup_loop_iters)

        spec = probe.batch_spec()
        pairs = [(x, y) for x in range(n) for y in range(x + 1, n)]

        if cfg.jobs > 1:
            chunks = _chunk_pairs(pairs, cfg.jobs)
            pool_start_us = obs.tracer._now_us()
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=cfg.jobs
            ) as pool:
                chunk_results = list(
                    pool.map(
                        _measure_pairs_chunk,
                        (spec for _ in chunks),
                        chunks,
                        (overhead for _ in chunks),
                        (cfg for _ in chunks),
                    )
                )
            # Stitch one child span per worker chunk into the parent
            # trace.  Adopted spans ride along in exports only — the
            # deterministic summary stays identical to a jobs=1 run.
            for index, chunk in enumerate(chunk_results):
                obs.tracer.adopt_span(
                    "lat_table.worker_chunk",
                    dur_us=chunk["dur_us"],
                    start_us=pool_start_us,
                    worker=index % cfg.jobs,
                    chunk=index,
                    n_pairs=chunk["n_pairs"],
                )
            records = [
                rec for chunk in chunk_results for rec in chunk["records"]
            ]
        else:
            sampler = PairSampler(spec)
            records = [
                _measure_pair_seeded(sampler, x, y, overhead, cfg)
                for x, y in pairs
            ]

        for rec in records:  # already in pair order: merge is deterministic
            x, y = rec["pair"]
            probe.samples_taken += rec["samples"]
            if rec["failed"]:
                obs.instant(
                    "lat_table.pair_failed", pair=[int(x), int(y)],
                    stdev=rec["stdev"], median=rec["median"],
                )
                raise MeasurementError(
                    f"pair ({x}, {y}) never stabilized: stdev "
                    f"{rec['stdev']:.1f} vs median {rec['median']:.1f} "
                    f"after {rec['retries']} retries — rerun libmctop solo "
                    "on the machine, possibly with different settings "
                    "(Section 3.5)"
                )
            retried += 1 if rec["retries"] else 0
            discarded_total += rec["discarded"]
            table[x, y] = table[y, x] = max(rec["median"], 0.0)
            stdevs[x, y] = stdevs[y, x] = rec["stdev"]
            pair_counter.inc()
            discard_hist.observe(
                rec["discarded"] / (cfg.repetitions * (rec["retries"] + 1))
            )
            stdev_hist.observe(rec["stdev"])
            if rec["retries"]:
                retry_counter.inc(rec["retries"])
                obs.instant(
                    "lat_table.retry",
                    pair=[int(x), int(y)], retries=rec["retries"],
                )

        discard_counter.inc(discarded_total)
        obs.counter("lat_table.samples").inc(
            probe.samples_taken - start_samples
        )

    return LatencyTableResult(
        table=table,
        repetitions=cfg.repetitions,
        samples_taken=probe.samples_taken - start_samples,
        retried_pairs=retried,
        tsc_overhead=overhead,
        discarded_samples=discarded_total,
        per_pair_stdev=stdevs,
    )


def collect_latency_table(
    probe: MeasurementContext,
    cfg: LatencyTableConfig | None = None,
) -> LatencyTableResult:
    """Fill the N x N latency table (Figure 6, step 1)."""
    cfg = cfg or LatencyTableConfig()
    if cfg.effective_sampling() == "pair":
        return _collect_pair_seeded(probe, cfg)
    obs = probe.obs
    n = probe.n_hw_contexts()
    table = np.zeros((n, n))
    stdevs = np.zeros((n, n))
    start_samples = probe.samples_taken
    retried = 0
    discarded_total = 0

    pair_counter = obs.counter("lat_table.pairs")
    retry_counter = obs.counter("lat_table.retries")
    discard_counter = obs.counter("lat_table.discarded_samples")
    discard_hist = obs.histogram("lat_table.discard_fraction")
    stdev_hist = obs.histogram("lat_table.pair_stdev")

    with obs.span("lat_table.collect", n_contexts=n,
                  repetitions=cfg.repetitions):
        overhead = probe.estimate_tsc_overhead()
        obs.gauge("lat_table.tsc_overhead").set(overhead)

        warmed: set[int] = set()
        for x in range(n):
            if cfg.warm_up and x not in warmed:
                probe.warm_up(x, cfg.warmup_loop_iters)
                warmed.add(x)
            for y in range(x + 1, n):
                if cfg.warm_up and y not in warmed:
                    probe.warm_up(y, cfg.warmup_loop_iters)
                    warmed.add(y)
                median, stdev, retries, discarded = _measure_pair(
                    probe, x, y, overhead, cfg
                )
                retried += 1 if retries else 0
                discarded_total += discarded
                table[x, y] = table[y, x] = max(median, 0.0)
                stdevs[x, y] = stdevs[y, x] = stdev
                pair_counter.inc()
                discard_hist.observe(
                    discarded / (cfg.repetitions * (retries + 1))
                )
                stdev_hist.observe(stdev)
                if retries:
                    retry_counter.inc(retries)
                    obs.instant(
                        "lat_table.retry",
                        pair=[int(x), int(y)], retries=retries,
                    )

        discard_counter.inc(discarded_total)
        obs.counter("lat_table.samples").inc(
            probe.samples_taken - start_samples
        )

    return LatencyTableResult(
        table=table,
        repetitions=cfg.repetitions,
        samples_taken=probe.samples_taken - start_samples,
        retried_pairs=retried,
        tsc_overhead=overhead,
        discarded_samples=discarded_total,
        per_pair_stdev=stdevs,
    )

"""Step 1 of MCTOP-ALG: collecting the context-to-context latency table.

Two simulated threads move from hardware context to hardware context and
fill the N x N table with lock-step CAS measurements (Figure 5).  All of
the paper's stabilization machinery is implemented:

* the rdtsc read overhead is estimated once and subtracted from every
  sample;
* both cores are warmed up until back-to-back spin loops stop getting
  faster (defeating DVFS);
* every pair is sampled ``repetitions`` times; the median is kept and,
  when the standard deviation exceeds ``stdev_threshold`` x median, the
  pair is re-measured with a relaxed threshold (up to
  ``max_stdev_threshold``), after which a :class:`MeasurementError` is
  raised;
* only the upper triangle is measured — the topology is symmetric.

The collection loop is fully instrumented through the probe's
:class:`~repro.obs.Observability`: samples taken, retried pairs,
discarded spurious samples and per-pair stability all land in the
metrics registry, and the whole step runs under a ``lat_table.collect``
span with an instant event per retried pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MeasurementError
from repro.hardware.probes import MeasurementContext

#: Section 3.2's measurement parameters, machine readable: libmctop
#: takes 2000 samples per pair and accepts a pair once the standard
#: deviation is within 7% of the median, doubling the threshold on
#: every retry up to 14%.  The simulated probe needs far fewer samples
#: for a stable median, so :class:`LatencyTableConfig`'s defaults
#: deviate from the paper; ``LatencyTableConfig.paper()`` restores the
#: paper's exact values.
PAPER_DEFAULTS = {
    "repetitions": 2000,
    "stdev_threshold": 0.07,
    "max_stdev_threshold": 0.14,
}


@dataclass(frozen=True)
class LatencyTableConfig:
    """Knobs of the measurement phase.

    Library defaults are tuned for the simulated probe (a stable median
    needs far fewer samples than real hardware); the paper's own values
    live in :data:`PAPER_DEFAULTS` and are available through
    :meth:`paper`.
    """

    repetitions: int = 75  # samples per pair; benches can raise it
    stdev_threshold: float = 0.07  # fraction of the median
    max_stdev_threshold: float = 0.14  # retry ceiling
    stdev_floor: float = 3.0  # cycles; absolute tolerance for tiny medians
    spurious_deviation: float = 0.25  # of the median: beyond it, a sample
    # is a spurious measurement and is discarded before the stdev check
    max_discard_fraction: float = 0.2  # more discards than this => retry
    warm_up: bool = True
    warmup_loop_iters: int = 50_000

    @classmethod
    def paper(cls, **overrides) -> "LatencyTableConfig":
        """The exact Section 3.2 configuration (2000 reps, 7%..14%)."""
        return cls(**{**PAPER_DEFAULTS, **overrides})


@dataclass
class LatencyTableResult:
    """The measured table plus collection statistics."""

    table: np.ndarray  # N x N medians, cycles; diagonal is 0
    repetitions: int
    samples_taken: int
    retried_pairs: int
    tsc_overhead: float
    discarded_samples: int = 0
    per_pair_stdev: np.ndarray = field(repr=False, default=None)


def _measure_pair(
    probe: MeasurementContext,
    x: int,
    y: int,
    overhead: float,
    cfg: LatencyTableConfig,
) -> tuple[float, float, int, int]:
    """Median latency for one context pair.

    Returns ``(median, stdev, retries, discarded)`` where ``discarded``
    counts the spurious samples thrown away across all attempts.
    """
    threshold = cfg.stdev_threshold
    retries = 0
    total_discarded = 0
    while True:
        line = probe.fresh_line()
        samples = np.empty(cfg.repetitions)
        for i in range(cfg.repetitions):
            samples[i] = probe.sample_pair_latency(x, y, line) - overhead
        median = float(np.median(samples))
        # Discard spurious measurements (interrupt-style spikes) the way
        # libmctop does before judging stability (Section 3.5).
        limit_dev = max(cfg.spurious_deviation * abs(median), 12.0)
        kept = samples[np.abs(samples - median) <= limit_dev]
        stdev = float(np.std(kept))
        discarded = cfg.repetitions - kept.size
        total_discarded += discarded
        limit = max(threshold * abs(median), cfg.stdev_floor)
        if stdev <= limit and discarded <= cfg.max_discard_fraction * cfg.repetitions:
            return median, stdev, retries, total_discarded
        retries += 1
        threshold *= 2.0
        if threshold > cfg.max_stdev_threshold:
            probe.obs.instant(
                "lat_table.pair_failed", pair=[int(x), int(y)],
                stdev=stdev, median=median,
            )
            raise MeasurementError(
                f"pair ({x}, {y}) never stabilized: stdev {stdev:.1f} vs "
                f"median {median:.1f} after {retries} retries — rerun "
                "libmctop solo on the machine, possibly with different "
                "settings (Section 3.5)"
            )


def collect_latency_table(
    probe: MeasurementContext,
    cfg: LatencyTableConfig | None = None,
) -> LatencyTableResult:
    """Fill the N x N latency table (Figure 6, step 1)."""
    cfg = cfg or LatencyTableConfig()
    obs = probe.obs
    n = probe.n_hw_contexts()
    table = np.zeros((n, n))
    stdevs = np.zeros((n, n))
    start_samples = probe.samples_taken
    retried = 0
    discarded_total = 0

    pair_counter = obs.counter("lat_table.pairs")
    retry_counter = obs.counter("lat_table.retries")
    discard_counter = obs.counter("lat_table.discarded_samples")
    discard_hist = obs.histogram("lat_table.discard_fraction")
    stdev_hist = obs.histogram("lat_table.pair_stdev")

    with obs.span("lat_table.collect", n_contexts=n,
                  repetitions=cfg.repetitions):
        overhead = probe.estimate_tsc_overhead()
        obs.gauge("lat_table.tsc_overhead").set(overhead)

        warmed: set[int] = set()
        for x in range(n):
            if cfg.warm_up and x not in warmed:
                probe.warm_up(x, cfg.warmup_loop_iters)
                warmed.add(x)
            for y in range(x + 1, n):
                if cfg.warm_up and y not in warmed:
                    probe.warm_up(y, cfg.warmup_loop_iters)
                    warmed.add(y)
                median, stdev, retries, discarded = _measure_pair(
                    probe, x, y, overhead, cfg
                )
                retried += 1 if retries else 0
                discarded_total += discarded
                table[x, y] = table[y, x] = max(median, 0.0)
                stdevs[x, y] = stdevs[y, x] = stdev
                pair_counter.inc()
                discard_hist.observe(
                    discarded / (cfg.repetitions * (retries + 1))
                )
                stdev_hist.observe(stdev)
                if retries:
                    retry_counter.inc(retries)
                    obs.instant(
                        "lat_table.retry",
                        pair=[int(x), int(y)], retries=retries,
                    )

        discard_counter.inc(discarded_total)
        obs.counter("lat_table.samples").inc(
            probe.samples_taken - start_samples
        )

    return LatencyTableResult(
        table=table,
        repetitions=cfg.repetitions,
        samples_taken=probe.samples_taken - start_samples,
        retried_pairs=retried,
        tsc_overhead=overhead,
        discarded_samples=discarded_total,
        per_pair_stdev=stdevs,
    )

"""Detecting dynamic topology changes (a stated libmctop limitation).

Section 3.5: *"libmctop does not currently support the detection of
dynamic changes of the topology ... MCTOP-ALG must be re-executed"*.
This module implements the obvious extension: a cheap *revalidation*
pass that re-samples a few strategically chosen context pairs and
checks them against the stored topology, telling the user whether a
re-run is needed — without paying for a full N x N inference.

Checked invariants (each violated by a realistic change):

* context count — a hardware context was disabled via the OS;
* SMT sibling latency — SMT was toggled in the BIOS;
* one intra-socket and one cross-socket pair per socket — socket-level
  reconfiguration or a description file from a different machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mctop import Mctop
from repro.core.structures import LatencyCluster
from repro.core.algorithm.clustering import assign_cluster
from repro.hardware.probes import MeasurementContext


@dataclass
class ChangeReport:
    """Outcome of a revalidation pass."""

    context_count_ok: bool = True
    mismatched_pairs: list[tuple[int, int, float, float]] = field(
        default_factory=list
    )  # (a, b, expected, measured)
    pairs_checked: int = 0

    @property
    def topology_still_valid(self) -> bool:
        return self.context_count_ok and not self.mismatched_pairs

    def summary(self) -> str:
        if self.topology_still_valid:
            return (
                f"topology still valid ({self.pairs_checked} pairs checked)"
            )
        lines = ["topology CHANGED — re-run MCTOP-ALG:"]
        if not self.context_count_ok:
            lines.append("  - the number of hardware contexts differs")
        for a, b, expected, measured in self.mismatched_pairs[:8]:
            lines.append(
                f"  - pair ({a}, {b}): expected ~{expected:.0f} cycles, "
                f"measured {measured:.0f}"
            )
        return "\n".join(lines)


def _probe_pairs(mctop: Mctop) -> list[tuple[int, int]]:
    """A small pair set that pins down the topology's shape."""
    pairs: list[tuple[int, int]] = []
    for sid in mctop.socket_ids():
        ctxs = mctop.socket_get_contexts(sid)
        if mctop.has_smt:
            core = mctop.core_of_context(ctxs[0])
            siblings = mctop.core_get_contexts(core)
            pairs.append((siblings[0], siblings[1]))
        # Two different cores of the same socket.
        other_core = next(
            (c for c in ctxs
             if mctop.core_of_context(c) != mctop.core_of_context(ctxs[0])),
            None,
        )
        if other_core is not None:
            pairs.append((ctxs[0], other_core))
    sockets = mctop.socket_ids()
    for a, b in zip(sockets, sockets[1:]):
        pairs.append(
            (mctop.socket_get_contexts(a)[0], mctop.socket_get_contexts(b)[0])
        )
    return pairs


def detect_changes(
    mctop: Mctop,
    probe: MeasurementContext,
    repetitions: int = 21,
    tolerance_clusters: tuple[LatencyCluster, ...] | None = None,
) -> ChangeReport:
    """Revalidate a stored topology against the live machine.

    A measured pair is fine when it lands in the *same latency cluster*
    the stored topology predicts; anything else (including a pair that
    suddenly matches a different cluster — e.g. a "sibling" that now
    behaves like a different core) is reported.
    """
    report = ChangeReport()
    if probe.n_hw_contexts() != mctop.n_contexts:
        report.context_count_ok = False
        return report

    clusters = tolerance_clusters or mctop.clusters
    overhead = probe.estimate_tsc_overhead()
    for a, b in _probe_pairs(mctop):
        probe.warm_up(a, loop_iters=20_000)
        probe.warm_up(b, loop_iters=20_000)
        line = probe.fresh_line()
        samples = [
            probe.sample_pair_latency(a, b, line) - overhead
            for _ in range(repetitions)
        ]
        measured = float(np.median(samples))
        expected = float(mctop.get_latency(a, b))
        report.pairs_checked += 1
        expected_cluster = assign_cluster(expected, clusters)
        measured_cluster = assign_cluster(measured, clusters)
        # Accept values inside the expected cluster's [lo, hi] band,
        # padded a little for measurement noise.
        band = clusters[expected_cluster]
        pad = max(6.0, 0.08 * band.median)
        in_band = band.lo - pad <= measured <= band.hi + pad
        if measured_cluster != expected_cluster and not in_band:
            report.mismatched_pairs.append((a, b, expected, measured))
    return report

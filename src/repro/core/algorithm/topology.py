"""Step 4 of MCTOP-ALG: topology creation (Section 3.4).

Assigns roles to the components produced by step 3:

* SMT is detected with the spin-loop probe (a calibrated loop slows
  down when its SMT sibling is busy); with SMT the first non-zero
  latency level is the physical cores;
* the socket level is the level whose components hold exactly
  ``n_contexts / n_nodes`` hardware contexts;
* every latency relation above the sockets becomes cross-socket
  connectivity (interconnect links), including multi-hop classes;
* each socket's local memory node is found by *measurement* (the node
  with minimum latency from that socket), which is how MCTOP-ALG gets
  the mapping right even when the OS has it wrong (footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.core.algorithm.components import ComponentHierarchy, HierarchyLevel
from repro.core.mctop import Mctop, Provenance
from repro.core.structures import (
    HwContext,
    HwcGroup,
    InterconnectLink,
    LatencyCluster,
    MemoryNode,
    SocketData,
    TopologyLevel,
    component_id,
)
from repro.hardware.probes import MeasurementContext


@dataclass(frozen=True)
class TopologyConfig:
    smt_spin_iters: int = 100_000
    smt_slowdown_threshold: float = 1.25
    smt_probe_reps: int = 5
    mem_probe_reps: int = 7
    two_hop_latency_factor: float = 1.25  # highest cross class is routed
    # if >= factor x the next one and the rest keeps the graph connected


def detect_smt(
    probe: MeasurementContext,
    normalized: np.ndarray,
    cfg: TopologyConfig | None = None,
) -> bool:
    """The paper's SMT probe: spin solo, then spin with the closest
    context busy; a slowdown means the two share a core."""
    cfg = cfg or TopologyConfig()
    n = normalized.shape[0]
    if n < 2:
        return False
    with probe.obs.span("topology.smt_probe"):
        off = normalized + np.where(np.eye(n, dtype=bool), np.inf, 0.0)
        x, y = np.unravel_index(np.argmin(off), off.shape)
        probe.warm_up(int(x))
        probe.warm_up(int(y))
        solo = float(
            np.median([probe.timed_spin(int(x), cfg.smt_spin_iters)
                       for _ in range(cfg.smt_probe_reps)])
        )
        paired = float(
            np.median([probe.paired_spin(int(x), int(y), cfg.smt_spin_iters)
                       for _ in range(cfg.smt_probe_reps)])
        )
        slowdown = paired / solo if solo else float("inf")
        probe.obs.gauge("topology.smt_slowdown").set(slowdown)
    return slowdown > cfg.smt_slowdown_threshold


def find_socket_level(hierarchy: ComponentHierarchy,
                      n_contexts: int, n_nodes: int) -> HierarchyLevel:
    """Section 3.4's rule: sockets hold ``n_contexts / n_nodes`` contexts."""
    if n_contexts % n_nodes:
        raise InferenceError(
            f"{n_contexts} contexts over {n_nodes} nodes is not uniform"
        )
    per_socket = n_contexts // n_nodes
    level = hierarchy.level_with_context_count(per_socket)
    if level is None:
        raise InferenceError(
            f"no component level holds exactly {per_socket} contexts; "
            "clustering produced an inconsistent hierarchy — retry the "
            "measurements (Section 3.6)"
        )
    return level


def _classify_cross_hops(
    socket_lat: np.ndarray, cfg: TopologyConfig
) -> np.ndarray:
    """Hop count per socket pair (1 = direct, 2 = routed).

    The highest latency class is considered routed when it is clearly
    slower than the next class and the lower-class edges alone connect
    the socket graph ("lvl 4 (2 hops)" in Figures 1b/2b).
    """
    k = socket_lat.shape[0]
    hops = np.ones((k, k), dtype=int)
    np.fill_diagonal(hops, 0)
    classes = sorted({socket_lat[i, j] for i in range(k) for j in range(i + 1, k)})
    if len(classes) < 2:
        return hops
    top = classes[-1]
    if top < cfg.two_hop_latency_factor * classes[-2]:
        return hops
    # Direct edges = everything below the top class; check connectivity.
    adj = [[j for j in range(k) if j != i and socket_lat[i, j] < top]
           for i in range(k)]
    seen = {0}
    frontier = [0]
    while frontier:
        nxt = [v for u in frontier for v in adj[u] if v not in seen]
        seen.update(nxt)
        frontier = nxt
    if len(seen) != k:
        return hops  # removing the top class disconnects: it is direct
    for i in range(k):
        for j in range(k):
            if i != j and socket_lat[i, j] == top:
                hops[i, j] = 2
    return hops


def _local_node_measurements(
    probe: MeasurementContext,
    socket_contexts: list[tuple[int, ...]],
    cfg: TopologyConfig,
) -> tuple[list[dict[int, float]], list[int]]:
    """Measure per-socket memory latency to every node; return the
    latency maps and each socket's (argmin) local node."""
    n_nodes = probe.n_nodes()
    latencies: list[dict[int, float]] = []
    local: list[int] = []
    with probe.obs.span("topology.local_nodes", n_nodes=n_nodes,
                        n_sockets=len(socket_contexts)):
        for ctxs in socket_contexts:
            rep = ctxs[0]
            lat_map = {
                node: float(
                    np.median([probe.mem_latency_sample(rep, node)
                               for _ in range(cfg.mem_probe_reps)])
                )
                for node in range(n_nodes)
            }
            latencies.append(lat_map)
            local.append(min(lat_map, key=lat_map.get))
    return latencies, local


def build_topology(
    probe: MeasurementContext,
    hierarchy: ComponentHierarchy,
    clusters: tuple[LatencyCluster, ...],
    normalized: np.ndarray,
    name: str,
    provenance: Provenance | None = None,
    cfg: TopologyConfig | None = None,
) -> Mctop:
    """Assemble the final MCTOP from the component hierarchy."""
    cfg = cfg or TopologyConfig()
    n_contexts = normalized.shape[0]
    n_nodes = probe.n_nodes()

    has_smt = detect_smt(probe, normalized, cfg)
    socket_level = find_socket_level(hierarchy, n_contexts, n_nodes)
    if has_smt and socket_level.level < 1:
        raise InferenceError("SMT detected but the socket level is level 0")

    socket_level_idx = socket_level.level
    smt_per_core = 1
    if has_smt:
        if socket_level_idx < 1:
            raise InferenceError("inconsistent SMT/socket levels")
        core_level = hierarchy.levels[1]
        smt_per_core = len(core_level.components[0].contexts)

    # ----------------------------------------------------------- groups
    groups: dict[int, HwcGroup] = {}
    level_infos: list[TopologyLevel] = [
        TopologyLevel(0, 0, tuple(range(n_contexts)), role="context")
    ]
    # Map (level, per-level index) -> group id for parent wiring.
    gid = {}
    for lvl in hierarchy.levels[1:socket_level_idx + 1]:
        ids = []
        for comp in lvl.components:
            cid = component_id(lvl.level, comp.index)
            gid[(lvl.level, comp.index)] = cid
            children: tuple[int, ...]
            if lvl.level == 1:
                children = tuple(
                    hierarchy.levels[0].components[c].contexts[0]
                    for c in comp.children
                )
            else:
                children = tuple(
                    gid[(lvl.level - 1, c)] for c in comp.children
                )
            groups[cid] = HwcGroup(
                id=cid,
                level=lvl.level,
                latency=int(round(lvl.latency)),
                children=children,
                contexts=comp.contexts,
            )
            ids.append(cid)
        if lvl.level == socket_level_idx:
            role = "socket"
        elif lvl.level == 1 and has_smt:
            role = "core"
        else:
            role = "group"
        level_infos.append(
            TopologyLevel(lvl.level, int(round(lvl.latency)), tuple(ids), role)
        )

    socket_ids = [
        gid[(socket_level_idx, c.index)] for c in socket_level.components
    ]
    # Wire parent pointers and socket ids top-down from each socket.
    for s_idx, comp in enumerate(socket_level.components):
        sid = socket_ids[s_idx]
        stack = [sid]
        while stack:
            g = groups[stack.pop()]
            g.socket_id = sid
            for child in g.children:
                if child in groups:
                    groups[child].parent_id = g.id
                    stack.append(child)

    # --------------------------------------------------------- contexts
    ctx_core: dict[int, int] = {}
    ctx_smt: dict[int, int] = {}
    if has_smt:
        for comp in hierarchy.levels[1].components:
            cid = gid[(1, comp.index)]
            for smt_idx, ctx in enumerate(sorted(comp.contexts)):
                ctx_core[ctx] = cid
                ctx_smt[ctx] = smt_idx
    else:
        for ctx in range(n_contexts):
            ctx_core[ctx] = ctx
            ctx_smt[ctx] = 0

    ctx_socket: dict[int, int] = {}
    for s_idx, comp in enumerate(socket_level.components):
        for ctx in comp.contexts:
            ctx_socket[ctx] = socket_ids[s_idx]

    contexts: dict[int, HwContext] = {}
    for ctx in range(n_contexts):
        row = normalized[ctx].copy()
        row[ctx] = np.inf
        contexts[ctx] = HwContext(
            id=ctx,
            core_id=ctx_core[ctx],
            socket_id=ctx_socket[ctx],
            smt_index=ctx_smt[ctx],
            next_ctx=int(np.argmin(row)),
        )

    # ----------------------------------------------- memory & local node
    socket_ctx_tuples = [c.contexts for c in socket_level.components]
    lat_maps, local_nodes = _local_node_measurements(
        probe, socket_ctx_tuples, cfg
    )
    if len(set(local_nodes)) != len(local_nodes) and n_nodes == len(socket_ids):
        raise InferenceError(
            f"two sockets claim the same local node ({local_nodes}); "
            "memory measurements were inconsistent"
        )
    sockets: dict[int, SocketData] = {}
    nodes: dict[int, MemoryNode] = {
        node: MemoryNode(id=node) for node in range(n_nodes)
    }
    for s_idx, sid in enumerate(socket_ids):
        sockets[sid] = SocketData(
            id=sid,
            local_node=local_nodes[s_idx],
            mem_latencies=dict(lat_maps[s_idx]),
        )
        nodes[local_nodes[s_idx]].local_socket_id = sid
        for ctx in socket_ctx_tuples[s_idx]:
            contexts[ctx].local_node = local_nodes[s_idx]

    # ------------------------------------------------------ cross levels
    links: dict[tuple[int, int], InterconnectLink] = {}
    k = len(socket_ids)
    if k > 1:
        socket_lat = socket_level.reduced
        hops = _classify_cross_hops(socket_lat, cfg)
        for i in range(k):
            for j in range(i + 1, k):
                a, b = sorted((socket_ids[i], socket_ids[j]))
                links[(a, b)] = InterconnectLink(
                    socket_a=a,
                    socket_b=b,
                    latency=int(round(socket_lat[i, j])),
                    n_hops=int(hops[i, j]),
                )
        cross_classes = sorted(
            {socket_lat[i, j] for i in range(k) for j in range(i + 1, k)}
        )
        next_level = socket_level_idx + 1
        for cls in cross_classes:
            members = tuple(
                sorted(
                    {
                        socket_ids[i]
                        for i in range(k)
                        for j in range(k)
                        if i != j and socket_lat[i, j] == cls
                    }
                )
            )
            level_infos.append(
                TopologyLevel(next_level, int(round(cls)), members, role="cross")
            )
            next_level += 1

    probe.obs.gauge("topology.n_sockets").set(len(socket_ids))
    probe.obs.gauge("topology.smt_per_core").set(smt_per_core)
    probe.obs.gauge("topology.n_links").set(len(links))
    return Mctop(
        name=name,
        contexts=contexts,
        groups=groups,
        sockets=sockets,
        nodes=nodes,
        links=links,
        levels=tuple(level_infos),
        clusters=clusters,
        lat_table=normalized,
        has_smt=has_smt,
        smt_per_core=smt_per_core,
        provenance=provenance,
    )

"""Structured NDJSON event log (and the shared rotating writer).

Metrics say *how much*, traces say *where the time went*; the event
log says *what happened*: discrete, operator-meaningful state changes
— a drift check completing, a machine's drift severity transitioning,
a cache entry being evicted, the watcher hitting an error.  One JSON
object per line, size-rotated, cheap enough to leave always on.

Two classes:

* :class:`RotatingNdjsonWriter` — the line-oriented, size-rotated,
  flush-per-line file writer.  It is the machinery the ``mctopd``
  access log already used; it lives here so both logs share one
  implementation, including the durability contract: :meth:`close`
  flushes **and fsyncs**, so the final event written during a SIGTERM
  drain is on disk before the process exits.
* :class:`EventLog` — the schema'd front end.  Every record carries
  ``ts`` (epoch seconds), ``kind`` (dotted event name) and
  ``request_id`` (from the optional provider — ``mctopd`` passes its
  request-scoped ContextVar getter, so events emitted while serving a
  request correlate with that request's trace span and access-log
  line), plus arbitrary JSON-compatible event fields.

Event kinds are free-form dotted names; the ones ``mctopd`` emits are
catalogued in ``docs/OBSERVABILITY.md`` (``drift.check``,
``drift.transition``, ``drift.baseline``, ``cache.eviction``,
``watcher.error``).  The fleet layer adds ``fleet.member_join``,
``fleet.member_eject`` and ``fleet.rebalance`` (router-side, emitted
exactly once per membership transition) and ``fleet.peer_hit``
(member-side, one per topology served from a peer's cache instead of
an MCTOP-ALG run).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path


class RotatingNdjsonWriter:
    """Append JSON lines to ``path``, rotating on size.

    When a write would push the file past ``max_bytes`` the current
    file shifts to ``<path>.1`` (``.1`` to ``.2``, ...) keeping
    ``backups`` rotated generations; ``backups=0`` truncates instead.
    Every line is flushed to the OS immediately; :meth:`close` also
    fsyncs so buffered tail lines survive an immediately-following
    process exit (the SIGTERM-drain contract).
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = 5_000_000,
        backups: int = 3,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.lines_written = 0
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def write_record(self, record: dict) -> None:
        """One compact JSON line; rotates first when it would overflow."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        if self._fh.tell() + len(line) > self.max_bytes:
            self._rotate()
        self._fh.write(line)
        self._fh.flush()
        self.lines_written += 1

    def _rotate(self) -> None:
        self._fh.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for n in range(self.backups - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{n}")
                if src.exists():
                    src.rename(
                        self.path.with_name(f"{self.path.name}.{n + 1}")
                    )
            if self.path.exists():
                self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._fh = open(self.path, "a", encoding="utf-8")
        self.rotations += 1

    def flush(self, fsync: bool = False) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def close(self) -> None:
        """Flush, fsync and close — the drain-time durability step."""
        if self._fh.closed:
            return
        self.flush(fsync=True)
        self._fh.close()

    def __enter__(self) -> "RotatingNdjsonWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EventLog:
    """Structured events over a :class:`RotatingNdjsonWriter`.

    Line schema (``ts``/``kind``/``request_id`` always present)::

        {"ts": 1754512345.123, "kind": "drift.check",
         "request_id": "a3f9c2e1b4d07788",
         "machine": "ivy", "severity": "ok", ...}

    ``request_id_provider`` is a zero-argument callable returning the
    current request id or ``None`` — ``mctopd`` passes
    ``current_request_id.get`` so every event emitted inside a request
    (or a watcher check, which stamps its own id) is trace-correlated.
    An explicit ``request_id=...`` field on :meth:`emit` wins.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = 5_000_000,
        backups: int = 3,
        request_id_provider=None,
        clock=time.time,
    ):
        self._writer = RotatingNdjsonWriter(
            path, max_bytes=max_bytes, backups=backups
        )
        self._request_id_provider = request_id_provider
        self._clock = clock

    # ------------------------------------------------------------- emit
    def emit(self, kind: str, **fields) -> None:
        if not kind:
            raise ValueError("event kind must be a non-empty string")
        request_id = fields.pop("request_id", None)
        if request_id is None and self._request_id_provider is not None:
            request_id = self._request_id_provider()
        record = {
            "ts": round(self._clock(), 3),
            "kind": kind,
            "request_id": request_id,
        }
        record.update(fields)
        self._writer.write_record(record)

    # ------------------------------------------------------------ admin
    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def lines_written(self) -> int:
        return self._writer.lines_written

    @property
    def rotations(self) -> int:
        return self._writer.rotations

    @property
    def closed(self) -> bool:
        return self._writer.closed

    def flush(self, fsync: bool = False) -> None:
        self._writer.flush(fsync=fsync)

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -------------------------------------------------------------- reading
#
# The read side of the rotating NDJSON contract (``mctop events tail``):
# rotated generations are ``<path>.N`` with the *highest* N oldest, so
# chronological order is ``path.N ... path.2, path.1, path``.


def log_segments(path: str | Path) -> list[Path]:
    """Every existing segment of a rotated NDJSON log, oldest first."""
    path = Path(path)
    numbered: list[tuple[int, Path]] = []
    prefix = path.name + "."
    if path.parent.exists():
        for candidate in path.parent.iterdir():
            if candidate.name.startswith(prefix):
                suffix = candidate.name[len(prefix):]
                if suffix.isdigit():
                    numbered.append((int(suffix), candidate))
    segments = [seg for _, seg in sorted(numbered, reverse=True)]
    if path.exists():
        segments.append(path)
    return segments


def _parse_line(line: str, kind: str | None, request_id: str | None):
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    if kind is not None and record.get("kind") != kind:
        return None
    if request_id is not None and record.get("request_id") != request_id:
        return None
    return record


def iter_log_records(
    path: str | Path,
    kind: str | None = None,
    request_id: str | None = None,
):
    """Parsed event records across all rotated segments, oldest first.

    Malformed or non-object lines (a torn write at a rotation boundary)
    are skipped, never raised — a tail over a live log must not die on
    the one line being written.
    """
    for segment in log_segments(path):
        try:
            fh = open(segment, encoding="utf-8", errors="replace")
        except OSError:
            continue  # rotated away between listing and opening
        with fh:
            for line in fh:
                record = _parse_line(line, kind, request_id)
                if record is not None:
                    yield record


def follow_log_records(
    path: str | Path,
    kind: str | None = None,
    request_id: str | None = None,
    poll_interval: float = 0.2,
    stop=None,
):
    """Yield new records appended to the *live* file, ``tail -f`` style.

    Starts at the current end of file; survives rotation (inode change
    or truncation restarts from the top of the new live file).  ``stop``
    is an optional zero-argument callable checked each poll so tests
    (and a SIGINT handler) can end the generator.
    """
    path = Path(path)
    position = path.stat().st_size if path.exists() else 0
    inode = path.stat().st_ino if path.exists() else None
    pending = b""
    while stop is None or not stop():
        if path.exists():
            st = path.stat()
            rotated = (inode is not None and st.st_ino != inode) \
                or st.st_size < position
            if rotated:
                position = 0
                pending = b""
            inode = st.st_ino
            if st.st_size > position:
                with open(path, "rb") as fh:
                    fh.seek(position)
                    chunk = fh.read()
                position += len(chunk)
                pending += chunk
                # Only complete lines parse; a torn tail waits for the
                # writer's next flush.
                while True:
                    newline = pending.find(b"\n")
                    if newline < 0:
                        break
                    line = pending[:newline].decode("utf-8", "replace")
                    pending = pending[newline + 1:]
                    record = _parse_line(line, kind, request_id)
                    if record is not None:
                        yield record
        time.sleep(poll_interval)

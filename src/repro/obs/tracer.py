"""Structured event tracing: ring-buffered spans with parent/child nesting.

A :class:`Tracer` records *spans* (named intervals with arbitrary
``args``) and *instant events* (zero-duration markers, e.g. a retried
measurement pair).  Spans nest through a context manager::

    with tracer.span("infer", machine="ivy"):
        with tracer.span("lat_table.collect"):
            ...
        tracer.instant("lat_table.retry", pair=(3, 7))

The nesting stack lives in a :class:`contextvars.ContextVar`, so spans
opened by concurrent asyncio tasks (one ``mctopd`` request each) parent
correctly within their own task instead of interleaving on a shared
stack; synchronous code sees the exact pre-contextvar behaviour.

Finished spans land in a bounded ring buffer (oldest dropped first, the
drop count is kept — ``dropped`` for all events, ``dropped_spans`` for
spans specifically, both surfaced by :meth:`Tracer.summary`) so an
always-on tracer can never grow without bound.  Spans recorded by a
*different* process (``jobs=N`` measurement workers) are stitched into
the parent trace with :meth:`Tracer.adopt_span`; adopted spans ride
along in exports but are excluded from the deterministic summary so
``jobs=1`` and ``jobs=8`` runs stay bit-identical.  Timestamps come
from an injectable clock, which the tests replace with a deterministic
counter.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One finished interval of work."""

    id: int
    name: str
    start_us: float
    dur_us: float
    depth: int  # nesting depth; 0 = root
    parent_id: int | None = None
    args: dict = field(default_factory=dict)
    #: True for spans recorded elsewhere (e.g. a ``jobs=N`` worker
    #: process) and stitched in after the fact; excluded from
    #: :meth:`Tracer.summary` so summaries stay mode-independent.
    stitched: bool = False

    def to_dict(self) -> dict:
        doc = {
            "id": self.id,
            "name": self.name,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "depth": self.depth,
            "parent_id": self.parent_id,
            "args": self.args,
        }
        if self.stitched:
            doc["stitched"] = True
        return doc


@dataclass
class Instant:
    """A zero-duration marker event."""

    id: int
    name: str
    ts_us: float
    depth: int
    parent_id: int | None = None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "ts_us": self.ts_us,
            "depth": self.depth,
            "parent_id": self.parent_id,
            "args": self.args,
        }


class Tracer:
    """Ring-buffered structured tracer.

    Parameters
    ----------
    capacity:
        Maximum number of retained events (spans + instants together).
        When full, the oldest events are dropped and ``dropped`` counts
        them (``dropped_spans`` counts the span subset).
    clock:
        A monotonic clock returning seconds; injectable for tests.
    """

    def __init__(self, capacity: int = 8192, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        self.events: deque[Span | Instant] = deque()
        self.dropped = 0
        self.dropped_spans = 0
        self._next_id = 0
        # (span id, name) tuples; per asyncio-task/context so concurrent
        # requests in one daemon never corrupt each other's parenting.
        self._stack_var: ContextVar[tuple[tuple[int, str], ...]] = ContextVar(
            "repro_tracer_stack", default=()
        )
        self.finished_spans = 0
        self.adopted_spans = 0
        self.instants = 0
        #: optional callable invoked with every recorded event, *after*
        #: it enters the ring.  The :class:`~repro.obs.trace_store
        #: .TraceStore` hangs off this to index spans by request id;
        #: the ring's capacity/drop accounting is unaffected by it.
        #: A raising sink never fails the instrumented request: the
        #: exception is swallowed and counted in :attr:`sink_errors`.
        self.sink = None
        self.sink_errors = 0

    # ------------------------------------------------------------ clock
    def _now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    def _record(self, event: Span | Instant) -> None:
        if len(self.events) >= self.capacity:
            evicted = self.events.popleft()
            self.dropped += 1
            if isinstance(evicted, Span):
                self.dropped_spans += 1
        self.events.append(event)
        if self.sink is not None:
            try:
                self.sink(event)
            except Exception:
                self.sink_errors += 1

    # ----------------------------------------------------------- spans
    @contextmanager
    def span(self, name: str, **args) -> Iterator[int]:
        """Open a nested span; yields the span id."""
        span_id = self._next_id
        self._next_id += 1
        stack = self._stack_var.get()
        parent = stack[-1][0] if stack else None
        depth = len(stack)
        token = self._stack_var.set(stack + ((span_id, name),))
        start = self._now_us()
        try:
            yield span_id
        finally:
            end = self._now_us()
            self._stack_var.reset(token)
            self.finished_spans += 1
            self._record(
                Span(
                    id=span_id,
                    name=name,
                    start_us=start,
                    dur_us=end - start,
                    depth=depth,
                    parent_id=parent,
                    args=args,
                )
            )

    def adopt_span(
        self,
        name: str,
        dur_us: float,
        start_us: float | None = None,
        **args,
    ) -> int:
        """Stitch a span measured elsewhere into this trace.

        Used when a ``jobs=N`` worker process (which has no access to
        the parent tracer) reports the timing of its chunk back to the
        parent: the merge loop adopts one child span per chunk, parented
        under whatever span is open at adoption time.  Adopted spans
        appear in exports (Chrome trace, ``to_json``) but never in
        :meth:`summary`, so deterministic summaries are identical for
        every ``jobs`` value.  Returns the new span id.
        """
        span_id = self._next_id
        self._next_id += 1
        stack = self._stack_var.get()
        parent = stack[-1][0] if stack else None
        if start_us is None:
            start_us = self._now_us() - dur_us
        self.adopted_spans += 1
        self._record(
            Span(
                id=span_id,
                name=name,
                start_us=start_us,
                dur_us=dur_us,
                depth=len(stack),
                parent_id=parent,
                args=args,
                stitched=True,
            )
        )
        return span_id

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker at the current position."""
        event_id = self._next_id
        self._next_id += 1
        stack = self._stack_var.get()
        parent = stack[-1][0] if stack else None
        self.instants += 1
        self._record(
            Instant(
                id=event_id,
                name=name,
                ts_us=self._now_us(),
                depth=len(stack),
                parent_id=parent,
                args=args,
            )
        )

    @property
    def active_depth(self) -> int:
        return len(self._stack_var.get())

    # --------------------------------------------------------- queries
    def spans(self) -> list[Span]:
        return [e for e in self.events if isinstance(e, Span)]

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def instants_named(self, name: str) -> list[Instant]:
        return [e for e in self.events
                if isinstance(e, Instant) and e.name == name]

    def summary(self) -> dict:
        """Deterministic per-name aggregates (counts; durations summed
        separately so they can be excluded from golden comparisons).
        Stitched (adopted) spans are excluded so the summary does not
        depend on the ``jobs`` fan-out that produced the trace."""
        by_name: dict[str, dict] = {}
        for span in self.spans():
            if span.stitched:
                continue
            agg = by_name.setdefault(
                span.name, {"count": 0, "total_us": 0.0}
            )
            agg["count"] += 1
            agg["total_us"] += span.dur_us
        return {
            "finished_spans": self.finished_spans,
            "instants": self.instants,
            "dropped": self.dropped,
            "dropped_spans": self.dropped_spans,
            "sink_errors": self.sink_errors,
            "by_name": by_name,
        }

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0
        self.dropped_spans = 0
        self.sink_errors = 0
        self.finished_spans = 0
        self.adopted_spans = 0
        self.instants = 0
        self._stack_var.set(())
        self._epoch = self._clock()

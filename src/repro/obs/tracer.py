"""Structured event tracing: ring-buffered spans with parent/child nesting.

A :class:`Tracer` records *spans* (named intervals with arbitrary
``args``) and *instant events* (zero-duration markers, e.g. a retried
measurement pair).  Spans nest through a context manager::

    with tracer.span("infer", machine="ivy"):
        with tracer.span("lat_table.collect"):
            ...
        tracer.instant("lat_table.retry", pair=(3, 7))

Finished spans land in a bounded ring buffer (oldest dropped first, the
drop count is kept) so an always-on tracer can never grow without
bound.  Timestamps come from an injectable clock, which the tests
replace with a deterministic counter.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One finished interval of work."""

    id: int
    name: str
    start_us: float
    dur_us: float
    depth: int  # nesting depth; 0 = root
    parent_id: int | None = None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "depth": self.depth,
            "parent_id": self.parent_id,
            "args": self.args,
        }


@dataclass
class Instant:
    """A zero-duration marker event."""

    id: int
    name: str
    ts_us: float
    depth: int
    parent_id: int | None = None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "ts_us": self.ts_us,
            "depth": self.depth,
            "parent_id": self.parent_id,
            "args": self.args,
        }


class Tracer:
    """Ring-buffered structured tracer.

    Parameters
    ----------
    capacity:
        Maximum number of retained events (spans + instants together).
        When full, the oldest events are dropped and ``dropped`` counts
        them.
    clock:
        A monotonic clock returning seconds; injectable for tests.
    """

    def __init__(self, capacity: int = 8192, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        self.events: deque[Span | Instant] = deque()
        self.dropped = 0
        self._next_id = 0
        self._stack: list[tuple[int, str]] = []  # (span id, name)
        self.finished_spans = 0
        self.instants = 0

    # ------------------------------------------------------------ clock
    def _now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    def _record(self, event: Span | Instant) -> None:
        if len(self.events) >= self.capacity:
            self.events.popleft()
            self.dropped += 1
        self.events.append(event)

    # ----------------------------------------------------------- spans
    @contextmanager
    def span(self, name: str, **args) -> Iterator[int]:
        """Open a nested span; yields the span id."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1][0] if self._stack else None
        depth = len(self._stack)
        self._stack.append((span_id, name))
        start = self._now_us()
        try:
            yield span_id
        finally:
            end = self._now_us()
            self._stack.pop()
            self.finished_spans += 1
            self._record(
                Span(
                    id=span_id,
                    name=name,
                    start_us=start,
                    dur_us=end - start,
                    depth=depth,
                    parent_id=parent,
                    args=args,
                )
            )

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker at the current position."""
        event_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1][0] if self._stack else None
        self.instants += 1
        self._record(
            Instant(
                id=event_id,
                name=name,
                ts_us=self._now_us(),
                depth=len(self._stack),
                parent_id=parent,
                args=args,
            )
        )

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    # --------------------------------------------------------- queries
    def spans(self) -> list[Span]:
        return [e for e in self.events if isinstance(e, Span)]

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def instants_named(self, name: str) -> list[Instant]:
        return [e for e in self.events
                if isinstance(e, Instant) and e.name == name]

    def summary(self) -> dict:
        """Deterministic per-name aggregates (counts; durations summed
        separately so they can be excluded from golden comparisons)."""
        by_name: dict[str, dict] = {}
        for span in self.spans():
            agg = by_name.setdefault(
                span.name, {"count": 0, "total_us": 0.0}
            )
            agg["count"] += 1
            agg["total_us"] += span.dur_us
        return {
            "finished_spans": self.finished_spans,
            "instants": self.instants,
            "dropped": self.dropped,
            "by_name": by_name,
        }

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0
        self.finished_spans = 0
        self.instants = 0
        self._stack.clear()
        self._epoch = self._clock()

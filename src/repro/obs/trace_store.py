"""Per-request span index with tail-based retention.

The :class:`~repro.obs.tracer.Tracer` is an export-only ring buffer:
great for "dump everything this process did", useless for "why was
request ``a3f9c2e1b4d07788`` slow?" ten minutes later.  The
:class:`TraceStore` closes that gap.  It hangs off the tracer's
``sink`` hook, groups finished spans and instants by the
``request_id`` they carry, and keeps the interesting traces around
under a bounded budget.

*Tail-based* retention means the keep/drop decision is made when the
request **finishes**, once its outcome is known — the opposite of
head sampling, which must guess up front.  Three classes of trace are
pinned (evicted only as a last resort):

* ``error``  — the request did not end in ``outcome == "ok"``;
* ``slo``    — it violated its verb's latency objective
  (:mod:`repro.obs.slo` decides, the daemon passes the verdict in);
* ``sample`` — every ``sample_every``-th finish, so a baseline of
  perfectly healthy traces survives for comparison.

Everything else is the fast/boring majority and is evicted first,
oldest first, whenever the store exceeds ``max_traces`` or
``max_bytes``; a TTL expires even pinned traces eventually.  The
result: under steady overload the store converges on exactly the
traces an operator will ask for.

Fleet stitching lives here too: :func:`assemble_fleet_timeline` merges
a router's record with the member records fetched by the router's
``trace`` fan-out, aligning each member's spans under the router's
``fleet.forward`` span for that member.  Clocks are per-process
monotonic and unrelated, so alignment is anchor-based, not absolute.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict

from repro.obs.tracer import Instant, Span

__all__ = [
    "TraceStore",
    "assemble_fleet_timeline",
    "record_timeline",
    "render_timeline",
]

#: pin classes, in eviction-resistance order (sample evicts first).
PIN_KINDS = ("error", "slo", "sample")


class TraceStore:
    """Bounded request-id → trace index fed by a tracer sink.

    Wire-up is two lines::

        store = TraceStore(obs=obs, member_id="m-0")
        obs.tracer.sink = store.observe

    Spans accumulate in an *open* table keyed by their ``request_id``
    argument until :meth:`finish` seals the request with its verb,
    outcome and duration; sealed records live in an insertion-ordered
    table that :meth:`_prune` keeps under budget.  ``parent_request_id``
    (a router's id on a forwarded request) is kept as an alias key so a
    fleet-wide id resolves on the member that served it.

    All methods are synchronous and allocation-light; ``observe`` runs
    on the hot path of every span exit, so it does one dict lookup and
    one append in the common case.
    """

    def __init__(
        self,
        obs=None,
        member_id: str | None = None,
        max_traces: int = 512,
        max_bytes: int = 4_000_000,
        ttl_seconds: float = 600.0,
        sample_every: int = 64,
        max_open: int = 1024,
        clock=time.monotonic,
    ):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.member_id = member_id
        self.max_traces = max_traces
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.sample_every = sample_every
        self.max_open = max_open
        self._clock = clock
        #: request_id -> {"spans": [...], "instants": [...]} (unsealed)
        self._open: dict[str, dict] = {}
        #: request_id -> {"doc", "size", "ts", "parent"} (sealed, FIFO)
        self._records: "OrderedDict[str, dict]" = OrderedDict()
        #: parent_request_id -> local request_id alias index
        self._by_parent: dict[str, str] = {}
        self._bytes = 0
        self._finishes = 0
        # Instruments are resolved once; ``observe``/``finish`` are hot.
        if obs is not None:
            self._c_retained = obs.counter("trace_store.retained")
            self._c_pinned = obs.counter("trace_store.pinned")
            self._c_evicted = obs.counter("trace_store.evicted")
            self._c_expired = obs.counter("trace_store.expired")
            self._c_dropped = obs.counter("trace_store.dropped_events")
            self._g_traces = obs.gauge("trace_store.traces")
            self._g_bytes = obs.gauge("trace_store.bytes")
        else:
            self._c_retained = self._c_pinned = self._c_evicted = None
            self._c_expired = self._c_dropped = None
            self._g_traces = self._g_bytes = None

    # ------------------------------------------------------------ ingest
    def observe(self, event) -> None:
        """Tracer sink: file a finished span/instant under its request.

        Events without a ``request_id`` argument (tooling spans, the
        watcher's own work) are ignored.  The open table is bounded by
        ``max_open``: a span for a brand-new request past that limit is
        dropped and counted, never buffered unboundedly.
        """
        args = getattr(event, "args", None)
        if not args:
            return
        rid = args.get("request_id")
        if not rid:
            return
        record = self._open.get(rid)
        if record is None:
            if len(self._open) >= self.max_open:
                if self._c_dropped is not None:
                    self._c_dropped.inc()
                return
            record = {"spans": [], "instants": []}
            self._open[rid] = record
        if isinstance(event, Span):
            record["spans"].append(event.to_dict())
        elif isinstance(event, Instant):
            record["instants"].append(event.to_dict())

    def finish(
        self,
        request_id: str,
        verb: str | None = None,
        outcome: str = "ok",
        duration_ms: float = 0.0,
        slo_violation: bool = False,
        parent_request_id: str | None = None,
    ) -> None:
        """Seal a request's trace and decide its retention class.

        Called from the daemon's dispatch ``finally`` for every frame,
        errors included — an error response with no recorded spans
        still yields a (tiny) pinned record, because "the trace of the
        failing request" is exactly what gets asked for.
        """
        open_record = self._open.pop(request_id, None) \
            or {"spans": [], "instants": []}
        self._finishes += 1
        if outcome != "ok":
            pinned = "error"
        elif slo_violation:
            pinned = "slo"
        elif self._finishes % self.sample_every == 0:
            pinned = "sample"
        else:
            pinned = None
        doc = {
            "request_id": request_id,
            "parent_request_id": parent_request_id,
            "verb": verb,
            "outcome": outcome,
            "duration_ms": round(duration_ms, 3),
            "pinned": pinned,
            "member": self.member_id,
            "spans": open_record["spans"],
            "instants": open_record["instants"],
        }
        size = len(json.dumps(doc, separators=(",", ":")))
        old = self._records.pop(request_id, None)
        if old is not None:
            self._forget(old, request_id)
        self._records[request_id] = {
            "doc": doc, "size": size, "ts": self._clock(),
            "parent": parent_request_id,
        }
        self._bytes += size
        if parent_request_id:
            self._by_parent[parent_request_id] = request_id
        if self._c_retained is not None:
            self._c_retained.inc()
            if pinned is not None:
                self._c_pinned.inc()
        self._prune()
        self._update_gauges()

    # ------------------------------------------------------------ lookup
    def get(self, request_id: str) -> dict | None:
        """The sealed record for ``request_id`` (or an alias of it).

        A router's id resolves on the member that served the forwarded
        request through the ``parent_request_id`` alias index.  Expired
        records are pruned on the way in, so a hit is always live.
        """
        self._prune()
        self._update_gauges()
        entry = self._records.get(request_id)
        if entry is None:
            alias = self._by_parent.get(request_id)
            if alias is not None:
                entry = self._records.get(alias)
        return entry["doc"] if entry is not None else None

    def __len__(self) -> int:
        return len(self._records)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def status_doc(self) -> dict:
        """Shape served by the ``trace`` verb when no id matches."""
        return {
            "enabled": True,
            "traces": len(self._records),
            "bytes": self._bytes,
            "open": len(self._open),
            "max_traces": self.max_traces,
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
            "sample_every": self.sample_every,
        }

    # ----------------------------------------------------------- pruning
    def _forget(self, entry: dict, request_id: str) -> None:
        self._bytes -= entry["size"]
        parent = entry.get("parent")
        if parent and self._by_parent.get(parent) == request_id:
            del self._by_parent[parent]

    def _prune(self) -> None:
        """TTL first (pins included), then budget — unpinned first."""
        if self.ttl_seconds is not None:
            deadline = self._clock() - self.ttl_seconds
            while self._records:
                rid, entry = next(iter(self._records.items()))
                if entry["ts"] > deadline:
                    break
                del self._records[rid]
                self._forget(entry, rid)
                if self._c_expired is not None:
                    self._c_expired.inc()
        while self._records and (
            len(self._records) > self.max_traces
            or self._bytes > self.max_bytes
        ):
            victim = None
            for rid, entry in self._records.items():
                if entry["doc"]["pinned"] is None:
                    victim = rid
                    break
            if victim is None:
                # Budget pressure from pinned traces alone: give up the
                # oldest pin rather than grow without bound.
                victim = next(iter(self._records))
            entry = self._records.pop(victim)
            self._forget(entry, victim)
            if self._c_evicted is not None:
                self._c_evicted.inc()

    def _update_gauges(self) -> None:
        if self._g_traces is not None:
            self._g_traces.set(len(self._records))
            self._g_bytes.set(self._bytes)


# ------------------------------------------------------------- stitching
def record_timeline(record: dict, member: str | None = None) -> list[dict]:
    """A record's spans as timeline entries, tagged with their member."""
    member = member if member is not None else record.get("member")
    timeline = []
    for span in record.get("spans", ()):
        entry = dict(span)
        entry["member"] = member
        timeline.append(entry)
    return timeline


def assemble_fleet_timeline(
    router_record: dict | None,
    member_records: dict[str, dict] | None = None,
) -> list[dict]:
    """One stitched timeline from router + member trace records.

    Per-process clocks are unrelated monotonic timebases, so member
    spans are shifted onto the router's timebase using the router's
    ``fleet.forward`` span for that member as the anchor: the member's
    root ``service.request`` span is assumed to start where the
    router's forward to it starts (ignoring network latency, which the
    forward span itself still exposes as the gap between its duration
    and the member root's).  Members with no usable anchor keep their
    own zero-based timebase, ``stitched: false``.  Entries are sorted
    by start time; every entry carries ``member`` ("router" for the
    router's own spans).
    """
    timeline: list[dict] = []
    anchors: dict[str, float] = {}
    if router_record is not None:
        for span in router_record.get("spans", ()):
            entry = dict(span)
            entry["member"] = "router"
            timeline.append(entry)
            args = span.get("args") or {}
            if span.get("name") == "fleet.forward" and args.get("member"):
                # Retries overwrite: the last forward to a member is
                # the one whose response was (or would have been) used.
                anchors[args["member"]] = span.get("start_us", 0.0)
    for member_id, record in sorted((member_records or {}).items()):
        if not record:
            continue
        spans = record.get("spans", ())
        anchor = anchors.get(member_id)
        offset = 0.0
        stitched = False
        if anchor is not None:
            root_start = min(
                (s.get("start_us", 0.0) for s in spans
                 if s.get("name") == "service.request"),
                default=None,
            )
            if root_start is None and spans:
                root_start = min(s.get("start_us", 0.0) for s in spans)
            if root_start is not None:
                offset = anchor - root_start
                stitched = True
        for span in spans:
            entry = dict(span)
            entry["member"] = member_id
            entry["stitched"] = stitched
            entry["start_us"] = span.get("start_us", 0.0) + offset
            timeline.append(entry)
    timeline.sort(key=lambda e: (e.get("start_us", 0.0),
                                 -e.get("dur_us", 0.0)))
    return timeline


def render_timeline(doc: dict) -> str:
    """Human rendering of an assembled trace document.

    Header (id, verb, outcome, duration, pin class), one aligned line
    per span with a member column, and an explicit trailer for members
    the router could not reach — silence about missing spans is how
    stitched traces lie.
    """
    lines: list[str] = []
    record = doc.get("router") or doc.get("record") or {}
    rid = doc.get("request_id") or record.get("request_id") or "?"
    header = f"trace {rid}"
    if record.get("verb"):
        header += f"  verb {record['verb']}"
    if record.get("outcome"):
        header += f"  outcome {record['outcome']}"
    if record.get("duration_ms") is not None:
        header += f"  {record['duration_ms']:.3f} ms"
    if record.get("pinned"):
        header += f"  [pinned: {record['pinned']}]"
    lines.append(header)
    timeline = doc.get("timeline") or []
    if not timeline:
        lines.append("  (no spans recorded)")
    base = min((s.get("start_us", 0.0) for s in timeline), default=0.0)
    ordered = sorted(
        timeline,
        key=lambda s: (s.get("start_us", 0.0), -s.get("dur_us", 0.0)),
    )
    for span in ordered:
        member = span.get("member") or "local"
        start_ms = (span.get("start_us", 0.0) - base) / 1e3
        dur_ms = span.get("dur_us", 0.0) / 1e3
        mark = "" if span.get("stitched", True) else "  (unaligned)"
        lines.append(
            f"  {member:<10} {start_ms:>9.3f}ms +{dur_ms:<9.3f} "
            f"{span.get('name', '?')}{mark}"
        )
    missing = doc.get("missing_members") or []
    if missing:
        lines.append(f"  missing members: {', '.join(missing)}")
    return "\n".join(lines) + "\n"

"""Continuous in-process sampling profiler.

A background thread walks :func:`sys._current_frames` at a configurable
rate (default ~100 Hz) and folds every thread's stack into a bounded
:class:`ProfileStore`.  Each sample is tagged with the verb and request
id of the dispatch that owns the sampled thread, so per-verb and
per-request flamegraphs fall out of a single sample stream:

* the daemon calls :meth:`SamplingProfiler.begin_dispatch` /
  :meth:`SamplingProfiler.end_dispatch` around handler execution on the
  event-loop thread (the sampler cannot read the asyncio ContextVar from
  another thread, so the dispatcher publishes the tag explicitly);
* CPU-heavy work shipped to a worker thread wraps itself in
  :meth:`SamplingProfiler.thread_tag`, which reads the request id from
  the ``request_id_provider`` ContextVar *inside* the worker thread —
  ``asyncio.to_thread`` copies the context, so the id resolves there.

Output is a plain snapshot document that serialises to the wire
unchanged; :func:`collapsed_stacks` and :func:`speedscope_doc` turn any
snapshot (including a fleet-merged one) into flamegraph.pl collapsed
text or a speedscope JSON profile.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from types import CodeType, FrameType
from typing import Callable, Iterator

__all__ = [
    "ProfileStore",
    "SamplingProfiler",
    "collapsed_stacks",
    "speedscope_doc",
]

#: Frames deeper than this are truncated (root kept, leaves dropped last).
MAX_STACK_DEPTH = 64

#: Per-request stack tables retained before the oldest request is evicted.
MAX_TRACKED_REQUESTS = 256

#: Fixed per-entry overhead charged against the byte budget, on top of
#: the frame-label text itself.
_ENTRY_OVERHEAD = 48


class ProfileStore:
    """Bounded aggregate of collapsed call stacks.

    Samples are counted per ``(verb, stack)`` pair and, when the sample
    carries a request id, per request as well.  The store enforces an
    approximate byte budget: once admitting a *new* distinct stack would
    exceed ``max_bytes``, further unseen stacks are dropped (and counted
    in :attr:`dropped`) while already-admitted stacks keep counting — a
    long-profiled process degrades to coarser data, never to unbounded
    memory.  Thread-safe; the sampler and the wire verb race on it.
    """

    def __init__(
        self,
        max_bytes: int = 2_000_000,
        max_requests: int = MAX_TRACKED_REQUESTS,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self.max_requests = int(max_requests)
        self._lock = threading.Lock()
        self.samples = 0
        self.dropped = 0
        self._bytes = 0
        # (verb | None, stack tuple, root first) -> sample count
        self._stacks: dict[tuple[str | None, tuple[str, ...]], int] = {}
        # request id -> {stack tuple: count}, oldest request first
        self._requests: OrderedDict[str, dict[tuple[str, ...], int]] = OrderedDict()
        # fleet-wide (parent) request id -> local request id, like TraceStore
        self._aliases: OrderedDict[str, str] = OrderedDict()

    def record(
        self,
        stack: tuple[str, ...],
        verb: str | None = None,
        request_id: str | None = None,
    ) -> None:
        """Fold one sampled stack into the aggregate."""
        if not stack:
            return
        with self._lock:
            key = (verb, stack)
            count = self._stacks.get(key)
            if count is None:
                cost = sum(len(frame) for frame in stack) + _ENTRY_OVERHEAD
                if self._bytes + cost > self.max_bytes:
                    self.dropped += 1
                    return
                self._stacks[key] = 1
                self._bytes += cost
            else:
                self._stacks[key] = count + 1
            self.samples += 1
            if request_id:
                per_request = self._requests.get(request_id)
                if per_request is None:
                    per_request = self._requests[request_id] = {}
                    while len(self._requests) > self.max_requests:
                        self._requests.popitem(last=False)
                per_request[stack] = per_request.get(stack, 0) + 1

    def alias(self, parent_request_id: str, request_id: str) -> None:
        """Let a fleet-wide (router) id resolve the member-local profile."""
        if parent_request_id == request_id:
            return
        with self._lock:
            self._aliases[parent_request_id] = request_id
            while len(self._aliases) > self.max_requests:
                self._aliases.popitem(last=False)

    def reset(self) -> None:
        with self._lock:
            self.samples = 0
            self.dropped = 0
            self._bytes = 0
            self._stacks.clear()
            self._requests.clear()
            self._aliases.clear()

    def snapshot(
        self,
        verb: str | None = None,
        request_id: str | None = None,
        limit: int = 200,
    ) -> dict:
        """A JSON-ready view of the aggregate.

        ``verb`` restricts the stack listing to one verb's samples;
        ``request_id`` switches to the per-request table (resolving
        fleet-wide alias ids) and reports ``found``.  ``limit`` caps the
        number of stack entries, keeping the heaviest.
        """
        with self._lock:
            verbs: dict[str, int] = {}
            for (stack_verb, _), count in self._stacks.items():
                name = stack_verb or "(untagged)"
                verbs[name] = verbs.get(name, 0) + count
            doc: dict = {
                "enabled": True,
                "samples": self.samples,
                "dropped": self.dropped,
                "distinct_stacks": len(self._stacks),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "requests_indexed": len(self._requests),
                "verbs": dict(sorted(verbs.items())),
            }
            if request_id is not None:
                resolved = self._aliases.get(request_id, request_id)
                per_request = self._requests.get(resolved)
                doc["request_id"] = request_id
                doc["found"] = per_request is not None
                entries = [
                    {"stack": list(stack), "count": count}
                    for stack, count in (per_request or {}).items()
                ]
            else:
                entries = [
                    {"stack": list(stack), "count": count, "verb": stack_verb}
                    for (stack_verb, stack), count in self._stacks.items()
                    if verb is None or stack_verb == verb
                ]
        entries.sort(key=lambda e: (-e["count"], e["stack"]))
        doc["stacks"] = entries[: max(1, limit)]
        return doc


class SamplingProfiler:
    """Background-thread sampling profiler over ``sys._current_frames``.

    ``request_id_provider`` is a zero-argument callable (typically
    ``current_request_id.get``) evaluated *inside* :meth:`thread_tag`
    so worker threads entered via ``asyncio.to_thread`` inherit the
    dispatching request's id through the copied context.
    """

    def __init__(
        self,
        obs=None,
        hz: float = 100.0,
        max_bytes: int = 2_000_000,
        member_id: str | None = None,
        request_id_provider: Callable[[], str | None] | None = None,
        max_depth: int = MAX_STACK_DEPTH,
    ) -> None:
        if not hz > 0:
            raise ValueError("hz must be positive")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self.member_id = member_id
        self.max_depth = int(max_depth)
        self.store = ProfileStore(max_bytes=max_bytes)
        self._request_id_provider = request_id_provider
        self._label_cache: dict[CodeType, str] = {}
        # thread ident -> token -> (verb, request id); the *last* entry
        # is the most recently begun still-active dispatch and wins.
        self._dispatches: dict[int, OrderedDict[int, tuple[str, str | None]]] = {}
        self._dispatch_lock = threading.Lock()
        self._next_token = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at: float | None = None
        self._sample_seconds = 0.0
        self._obs = obs
        self._samples_counter = obs.counter("profiler.samples") if obs else None
        self._dropped_counter = obs.counter("profiler.dropped") if obs else None
        self._last_dropped_synced = 0

    # ------------------------------------------------------------- tagging

    def begin_dispatch(
        self,
        verb: str,
        request_id: str | None = None,
        parent_request_id: str | None = None,
    ) -> tuple[int, int]:
        """Tag the calling thread's samples with ``verb``/``request_id``
        until the returned handle is passed to :meth:`end_dispatch`."""
        if request_id is None and self._request_id_provider is not None:
            request_id = self._request_id_provider()
        if parent_request_id and request_id:
            self.store.alias(parent_request_id, request_id)
        ident = threading.get_ident()
        with self._dispatch_lock:
            token = self._next_token
            self._next_token += 1
            self._dispatches.setdefault(ident, OrderedDict())[token] = (
                verb,
                request_id,
            )
        return (ident, token)

    def end_dispatch(self, handle: tuple[int, int]) -> None:
        ident, token = handle
        with self._dispatch_lock:
            active = self._dispatches.get(ident)
            if active is not None:
                active.pop(token, None)
                if not active:
                    del self._dispatches[ident]

    @contextmanager
    def thread_tag(self, verb: str) -> Iterator[None]:
        """Tag the current (worker) thread's samples for the duration of
        the block, resolving the request id from the provider in-thread."""
        handle = self.begin_dispatch(verb)
        try:
            yield
        finally:
            self.end_dispatch(handle)

    # ------------------------------------------------------------ sampling

    def _label(self, code: CodeType) -> str:
        label = self._label_cache.get(code)
        if label is None:
            name = getattr(code, "co_qualname", None) or code.co_name
            filename = code.co_filename
            # module stem keeps labels short and stable across linenos
            slash = max(filename.rfind("/"), filename.rfind("\\"))
            stem = filename[slash + 1 :]
            if stem.endswith(".py"):
                stem = stem[:-3]
            label = f"{stem}.{name}" if stem else name
            self._label_cache[code] = label
        return label

    def _collapse(self, frame: FrameType) -> tuple[str, ...]:
        frames: list[str] = []
        while frame is not None and len(frames) < self.max_depth:
            frames.append(self._label(frame.f_code))
            frame = frame.f_back
        frames.reverse()
        return tuple(frames)

    def sample(self) -> int:
        """Take one sampling pass over every live thread (except the
        caller's own) and fold the stacks into the store.  Public so
        tests can sample deterministically without the thread running.
        Returns the number of stacks recorded."""
        started = time.perf_counter()
        own = threading.get_ident()
        frames = sys._current_frames()
        with self._dispatch_lock:
            tags = {
                ident: next(reversed(active.values()))
                for ident, active in self._dispatches.items()
                if active
            }
        recorded = 0
        for ident, frame in frames.items():
            if ident == own:
                continue
            stack = self._collapse(frame)
            if not stack:
                continue
            verb, request_id = tags.get(ident, (None, None))
            self.store.record(stack, verb=verb, request_id=request_id)
            recorded += 1
        self._sample_seconds += time.perf_counter() - started
        if self._samples_counter is not None:
            if recorded:
                self._samples_counter.inc(recorded)
            dropped = self.store.dropped
            delta = dropped - self._last_dropped_synced
            if delta > 0:
                self._dropped_counter.inc(delta)
                self._last_dropped_synced = dropped
        if self._obs is not None:
            self._obs.gauge("profiler.distinct_stacks").set(len(self.store._stacks))
            self._obs.gauge("profiler.overhead_fraction").set(
                round(self.overhead_fraction(), 6)
            )
        return recorded

    def overhead_fraction(self) -> float:
        """Estimated fraction of wall-clock time spent sampling."""
        if self._started_at is None:
            return 0.0
        elapsed = time.perf_counter() - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._sample_seconds / elapsed)

    # ----------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="mctop-profiler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None

    def _run(self) -> None:
        next_at = time.perf_counter()
        while not self._stop.is_set():
            try:
                self.sample()
            except Exception:
                # never let a sampling hiccup (e.g. a thread exiting
                # mid-walk) kill the profiler thread
                pass
            next_at += self.interval
            delay = next_at - time.perf_counter()
            if delay <= 0:
                # fell behind: skip the missed ticks instead of bursting
                next_at = time.perf_counter()
                continue
            self._stop.wait(delay)

    def reset(self) -> None:
        self.store.reset()
        self._sample_seconds = 0.0
        if self._started_at is not None:
            self._started_at = time.perf_counter()
        self._last_dropped_synced = 0

    # ------------------------------------------------------------ snapshot

    def snapshot(
        self,
        verb: str | None = None,
        request_id: str | None = None,
        limit: int = 200,
    ) -> dict:
        doc = self.store.snapshot(verb=verb, request_id=request_id, limit=limit)
        doc["hz"] = self.hz
        doc["running"] = self.running
        doc["overhead_fraction"] = round(self.overhead_fraction(), 6)
        if self.member_id is not None:
            doc["member"] = self.member_id
        return doc


# ----------------------------------------------------------------- exports


def collapsed_stacks(doc: dict) -> str:
    """Render a profile snapshot in flamegraph.pl collapsed format:
    one ``root;child;leaf count`` line per distinct stack."""
    totals: dict[str, int] = {}
    for entry in doc.get("stacks") or []:
        stack = entry.get("stack") or []
        if not stack:
            continue
        line = ";".join(stack)
        totals[line] = totals.get(line, 0) + int(entry.get("count") or 0)
    lines = [
        f"{line} {count}"
        for line, count in sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_doc(doc: dict, name: str = "mctop profile") -> dict:
    """Render a profile snapshot as a speedscope ``sampled`` profile.

    When the snapshot carries an ``hz`` rate, weights are seconds
    (count / hz); otherwise raw sample counts with unit ``none``.
    """
    frame_index: dict[str, int] = {}
    frames: list[dict] = []
    samples: list[list[int]] = []
    weights: list[float] = []
    hz = doc.get("hz")
    unit = "seconds" if hz else "none"
    for entry in doc.get("stacks") or []:
        stack = entry.get("stack") or []
        if not stack:
            continue
        indexed = []
        for label in stack:
            index = frame_index.get(label)
            if index is None:
                index = frame_index[label] = len(frames)
                frames.append({"name": label})
            indexed.append(index)
        count = int(entry.get("count") or 0)
        samples.append(indexed)
        weights.append(count / hz if hz else count)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": unit,
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "mctop",
    }

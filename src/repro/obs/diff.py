"""Semantic MCTOP diff: has a machine drifted from its description?

MCTOP description files are persisted and reused (paper Sections 4-5),
but the measurements behind them decay: DVFS policy changes, sustained
contention, a BIOS update toggling SMT, a DIMM swap.  The paper's own
validation (Section 5) is a one-shot check; this module provides the
comparison primitive a *continuous* validator needs — a semantic diff
of two topologies that separates

* **structural drift** — context count, hwc-group/socket membership,
  SMT arrangement, memory-node count, latency-level count.  A
  structural mismatch means the stored description no longer describes
  this machine at all; it is always ``critical``.
* **metric drift** — per-level communication-latency deltas, memory
  latency/bandwidth, cache sizes and latencies.  Each category carries
  configurable relative thresholds mapping a delta to ``ok``/``warn``/
  ``critical``; coherence-protocol determinism (Section 3) is what
  makes these levels crisp enough that a threshold crossing is signal,
  not noise.

:func:`compare_mctops` returns a deterministic :class:`DriftReport`
(two fixed topologies always produce the same report, findings in a
stable order) with JSON (:meth:`DriftReport.to_dict`) and text
(:meth:`DriftReport.render`) renderings.  The ``mctop diff`` subcommand
and the ``mctopd`` drift watcher are both thin wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: Severity scale, worst last.  ``rank()`` maps into it; gauges export
#: the rank (0 = ok, 1 = warn, 2 = critical).
SEVERITIES = ("ok", "warn", "critical")


def severity_rank(severity: str) -> int:
    """0 for ``ok``, 1 for ``warn``, 2 for ``critical``."""
    return SEVERITIES.index(severity)


def _worst(severities) -> str:
    worst = "ok"
    for s in severities:
        if severity_rank(s) > severity_rank(worst):
            worst = s
    return worst


@dataclass(frozen=True)
class DriftThresholds:
    """Relative thresholds turning a metric delta into a severity.

    A delta ``|measured - expected| / expected`` above the category's
    ``*_warn`` fraction is ``warn``; above ``*_critical`` it is
    ``critical``.  Communication latencies additionally require the
    absolute delta to exceed ``min_abs_cycles`` — a 1-cycle wobble on a
    4-cycle SMT level is measurement noise, not drift, even though it
    is 25% relative.
    """

    comm_warn: float = 0.10
    comm_critical: float = 0.30
    mem_latency_warn: float = 0.10
    mem_latency_critical: float = 0.30
    mem_bandwidth_warn: float = 0.10
    mem_bandwidth_critical: float = 0.30
    cache_warn: float = 0.05
    cache_critical: float = 0.25
    min_abs_cycles: float = 6.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"{f.name} must be a non-negative number")

    @classmethod
    def uniform(cls, warn: float, critical: float,
                min_abs_cycles: float = 6.0) -> "DriftThresholds":
        """One warn/critical pair applied to every metric category
        (what the ``mctop diff --threshold-*`` flags construct)."""
        return cls(
            comm_warn=warn, comm_critical=critical,
            mem_latency_warn=warn, mem_latency_critical=critical,
            mem_bandwidth_warn=warn, mem_bandwidth_critical=critical,
            cache_warn=warn, cache_critical=critical,
            min_abs_cycles=min_abs_cycles,
        )

    def classify(self, category: str, expected: float, measured: float,
                 ) -> tuple[str, float]:
        """(severity, relative delta) for one metric observation."""
        if expected == measured:
            return "ok", 0.0
        base = abs(expected)
        rel = abs(measured - expected) / base if base else float("inf")
        if category == "comm_latency" and \
                abs(measured - expected) < self.min_abs_cycles:
            return "ok", rel
        warn = getattr(self, f"{_FIELD_PREFIX[category]}_warn")
        critical = getattr(self, f"{_FIELD_PREFIX[category]}_critical")
        if rel > critical:
            return "critical", rel
        if rel > warn:
            return "warn", rel
        return "ok", rel

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


_FIELD_PREFIX = {
    "comm_latency": "comm",
    "mem_latency": "mem_latency",
    "mem_bandwidth": "mem_bandwidth",
    "cache": "cache",
}

#: Finding categories, in report order.
CATEGORIES = ("structure", "comm_latency", "mem_latency",
              "mem_bandwidth", "cache")


@dataclass(frozen=True)
class DriftFinding:
    """One observed difference between two topologies."""

    category: str        # one of CATEGORIES
    severity: str        # "warn" | "critical" (ok deltas are not findings)
    subject: str         # what drifted, e.g. "level 3 (cross)"
    expected: float | None
    measured: float | None
    rel_delta: float | None
    message: str

    def to_dict(self) -> dict:
        return {
            "category": self.category,
            "severity": self.severity,
            "subject": self.subject,
            "expected": self.expected,
            "measured": self.measured,
            "rel_delta": round(self.rel_delta, 6)
            if self.rel_delta is not None else None,
            "message": self.message,
        }


@dataclass(frozen=True)
class DriftReport:
    """The deterministic outcome of one :func:`compare_mctops` call.

    ``findings`` holds every warn/critical difference, ordered by
    (category, subject); an empty tuple means the topologies agree
    within the thresholds.  ``severity`` is the worst finding ("ok"
    when empty) and ``exit_code`` maps it onto the ``mctop diff``
    convention: 0 ok, 1 warn, 2 critical.
    """

    name_a: str
    name_b: str
    findings: tuple[DriftFinding, ...] = ()
    thresholds: DriftThresholds = field(default_factory=DriftThresholds)

    @property
    def severity(self) -> str:
        return _worst(f.severity for f in self.findings)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return severity_rank(self.severity)

    def critical_findings(self) -> tuple[DriftFinding, ...]:
        """Only the criticals — what the fuzz oracle treats as an
        invariant violation (warn-level metric wobble is tolerated)."""
        return tuple(f for f in self.findings if f.severity == "critical")

    @property
    def has_structural_drift(self) -> bool:
        """True when the two topologies differ in *shape*, not just in
        measured metric values."""
        return any(f.category == "structure" for f in self.findings)

    def findings_by_category(self) -> dict[str, list[DriftFinding]]:
        out: dict[str, list[DriftFinding]] = {}
        for f in self.findings:
            out.setdefault(f.category, []).append(f)
        return out

    def counts(self) -> dict[str, int]:
        return {
            "total": len(self.findings),
            "warn": sum(f.severity == "warn" for f in self.findings),
            "critical": sum(
                f.severity == "critical" for f in self.findings
            ),
        }

    def to_dict(self) -> dict:
        """Plain JSON-compatible data, key-stable for goldens/wire."""
        return {
            "format": "mctop-drift-report",
            "version": 1,
            "name_a": self.name_a,
            "name_b": self.name_b,
            "severity": self.severity,
            "severity_rank": severity_rank(self.severity),
            "ok": self.ok,
            "counts": self.counts(),
            "thresholds": self.thresholds.to_dict(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Human-readable report (what ``mctop diff`` prints)."""
        head = f"drift {self.name_a} vs {self.name_b}: "
        if self.ok:
            return head + "ok (no drift within thresholds)"
        counts = self.counts()
        lines = [
            head + f"{self.severity.upper()} "
            f"({counts['critical']} critical, {counts['warn']} warn)"
        ]
        for category in CATEGORIES:
            for f in self.findings_by_category().get(category, []):
                lines.append(f"  [{f.severity:>8}] {f.category}: {f.message}")
        return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{value:g}"


class _Collector:
    """Accumulates findings with the shared classify-and-record step."""

    def __init__(self, thresholds: DriftThresholds):
        self.thresholds = thresholds
        self.findings: list[DriftFinding] = []

    def structural(self, subject: str, message: str,
                   expected=None, measured=None) -> None:
        self.findings.append(DriftFinding(
            category="structure", severity="critical", subject=subject,
            expected=expected, measured=measured, rel_delta=None,
            message=message,
        ))

    def metric(self, category: str, subject: str,
               expected: float, measured: float, unit: str) -> None:
        severity, rel = self.thresholds.classify(
            category, float(expected), float(measured)
        )
        if severity == "ok":
            return
        self.findings.append(DriftFinding(
            category=category, severity=severity, subject=subject,
            expected=float(expected), measured=float(measured),
            rel_delta=rel,
            message=f"{subject}: expected {_fmt(float(expected))} {unit}, "
                    f"measured {_fmt(float(measured))} {unit} "
                    f"({rel:.0%} off)",
        ))

    def ordered(self) -> tuple[DriftFinding, ...]:
        rank = {c: i for i, c in enumerate(CATEGORIES)}
        return tuple(sorted(
            self.findings,
            key=lambda f: (rank[f.category], f.subject, f.message),
        ))


def _membership(mctop) -> list[tuple[tuple[int, ...], ...]]:
    """Socket and core context-membership as order-free multisets, so a
    pure component renumbering is not reported as drift."""
    sockets = sorted(
        tuple(sorted(mctop.socket_get_contexts(s)))
        for s in mctop.socket_ids()
    )
    cores = sorted(
        tuple(sorted(mctop.core_get_contexts(c)))
        for c in mctop.core_ids()
    )
    return [tuple(sockets), tuple(cores)]


def _compare_structure(col: _Collector, a, b) -> bool:
    """Record structural findings; False when metric comparison is
    meaningless (the shapes do not line up)."""
    comparable = True
    if a.n_contexts != b.n_contexts:
        col.structural(
            "contexts",
            f"hardware context count changed: {a.n_contexts} -> "
            f"{b.n_contexts}",
            expected=a.n_contexts, measured=b.n_contexts,
        )
        comparable = False
    if a.n_sockets != b.n_sockets:
        col.structural(
            "sockets",
            f"socket count changed: {a.n_sockets} -> {b.n_sockets}",
            expected=a.n_sockets, measured=b.n_sockets,
        )
        comparable = False
    if a.n_nodes != b.n_nodes:
        col.structural(
            "memory_nodes",
            f"memory node count changed: {a.n_nodes} -> {b.n_nodes}",
            expected=a.n_nodes, measured=b.n_nodes,
        )
    if (a.has_smt, a.smt_per_core) != (b.has_smt, b.smt_per_core):
        col.structural(
            "smt",
            f"SMT arrangement changed: {a.smt_per_core}-way -> "
            f"{b.smt_per_core}-way",
            expected=a.smt_per_core, measured=b.smt_per_core,
        )
        comparable = False
    if len(a.levels) != len(b.levels):
        col.structural(
            "latency_levels",
            f"latency level count changed: {len(a.levels)} -> "
            f"{len(b.levels)}",
            expected=len(a.levels), measured=len(b.levels),
        )
        comparable = False
    if comparable and _membership(a) != _membership(b):
        col.structural(
            "membership",
            "hwc-group/socket membership changed (contexts regrouped "
            "across cores or sockets)",
        )
        comparable = False
    return comparable


def _compare_levels(col: _Collector, a, b) -> None:
    for level_a, level_b in zip(a.levels, b.levels):
        subject = f"level {level_a.level} ({level_a.role})"
        if level_a.role != level_b.role or \
                len(level_a.component_ids) != len(level_b.component_ids):
            col.structural(
                subject,
                f"{subject} changed shape: {level_a.role} x "
                f"{len(level_a.component_ids)} -> {level_b.role} x "
                f"{len(level_b.component_ids)}",
            )
            continue
        col.metric("comm_latency", subject,
                   level_a.latency, level_b.latency, "cycles")


def _compare_memory(col: _Collector, a, b) -> None:
    if not (a.has_memory_measurements() and b.has_memory_measurements()):
        return
    for sid_a, sid_b in zip(a.socket_ids(), b.socket_ids()):
        sock_a, sock_b = a.sockets[sid_a], b.sockets[sid_b]
        for nid_a, nid_b in zip(sorted(sock_a.mem_latencies),
                                sorted(sock_b.mem_latencies)):
            subject = f"socket {sid_a} -> node {nid_a} latency"
            col.metric("mem_latency", subject,
                       sock_a.mem_latencies[nid_a],
                       sock_b.mem_latencies[nid_b], "cycles")
        for nid_a, nid_b in zip(sorted(sock_a.mem_bandwidths),
                                sorted(sock_b.mem_bandwidths)):
            subject = f"socket {sid_a} -> node {nid_a} bandwidth"
            col.metric("mem_bandwidth", subject,
                       sock_a.mem_bandwidths[nid_a],
                       sock_b.mem_bandwidths[nid_b], "GB/s")


def _compare_caches(col: _Collector, a, b) -> None:
    ca, cb = a.cache_info, b.cache_info
    if ca is None or cb is None:
        return
    if tuple(sorted(ca.sizes_kib)) != tuple(sorted(cb.sizes_kib)):
        col.structural(
            "cache_levels",
            f"measured cache levels changed: "
            f"{sorted(ca.sizes_kib)} -> {sorted(cb.sizes_kib)}",
        )
        return
    for level in sorted(ca.sizes_kib):
        col.metric("cache", f"L{level} size",
                   ca.sizes_kib[level], cb.sizes_kib[level], "KiB")
    for level in sorted(set(ca.latencies) & set(cb.latencies)):
        col.metric("cache", f"L{level} latency",
                   ca.latencies[level], cb.latencies[level], "cycles")


def compare_mctops(a, b, thresholds: DriftThresholds | None = None,
                   ) -> DriftReport:
    """Semantically compare two :class:`~repro.core.mctop.Mctop`\\ s.

    ``a`` is the reference (e.g. the stored description), ``b`` the
    candidate (e.g. a fresh re-measurement); deltas are relative to
    ``a``.  Structural differences short-circuit the metric comparison
    — comparing per-level latencies of two different shapes would pair
    unrelated levels.
    """
    thresholds = thresholds or DriftThresholds()
    col = _Collector(thresholds)
    if _compare_structure(col, a, b):
        _compare_levels(col, a, b)
        _compare_memory(col, a, b)
        _compare_caches(col, a, b)
    return DriftReport(
        name_a=a.name, name_b=b.name,
        findings=col.ordered(), thresholds=thresholds,
    )

"""Process-local metrics: counters, gauges, histograms and timers.

The design follows LIKWID's "lightweight, always-on" philosophy
(Treibig et al.): metrics are plain Python attribute updates with no
locks, no background threads and no dependencies, cheap enough to leave
enabled inside the measurement hot loops.  A :class:`Registry` is a
flat namespace of named instruments; every layer of the system
(measurement, inference, simulation) writes into the registry of its
:class:`~repro.obs.Observability` container, and exporters turn a
registry snapshot into JSON or a human-readable table.

Instrument names use dotted paths (``lat_table.samples``,
``sim.lock.acquires``) so a snapshot groups naturally by subsystem.
"""

from __future__ import annotations

import bisect
import math
import time
from contextlib import contextmanager
from typing import Iterator


class Counter:
    """A monotonically increasing count (samples taken, retries, ...)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (cluster count, tsc overhead, ...)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


#: Default Prometheus-style bucket upper bounds.  A wide log ladder so
#: one set covers sub-millisecond service timers (seconds) and
#: simulated-cycle latencies (hundreds) alike; +Inf is implicit.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
)

#: Quantiles reported by :meth:`Histogram.percentiles`.
PERCENTILES = (0.5, 0.95, 0.99)

#: Reservoir size for quantile estimation: the most recent values, a
#: sliding window biased to "now" (what a live dashboard wants).
RESERVOIR_SIZE = 512

#: How many exemplars a histogram keeps: the labels (request ids) of
#: its largest observations, one slot per distinct label.
EXEMPLAR_SLOTS = 5


class Histogram:
    """Streaming summary statistics of an observed distribution.

    Keeps count/sum/min/max plus the sum of squares, so mean and
    standard deviation are exact at constant memory, plus two bounded
    structures for distribution shape:

    * cumulative *bucket* counts over :data:`DEFAULT_BUCKETS` (the
      Prometheus histogram exposition);
    * a sliding-window *reservoir* of the last :data:`RESERVOIR_SIZE`
      values, from which p50/p95/p99 are estimated.

    :meth:`observe_bulk` merges pre-aggregated stats without per-value
    data, so bulk-merged values reach count/sum/min/max exactly but the
    buckets (beyond the implicit +Inf) and the quantile reservoir only
    see individually observed values — quantiles are best-effort by
    design, never a source of nondeterminism in golden summaries.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sumsq",
                 "_bounds", "_bucket_counts", "_reservoir", "_res_pos",
                 "_exemplars")
    kind = "histogram"

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sumsq = 0.0
        self._bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        self._bucket_counts = [0] * len(self._bounds)
        self._reservoir: list[float] = []
        self._res_pos = 0
        #: (value, label) of the largest observations, descending;
        #: one slot per distinct label (see :meth:`record_exemplar`).
        self._exemplars: list[tuple[float, str]] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = bisect.bisect_left(self._bounds, value)
        if idx < len(self._bucket_counts):
            self._bucket_counts[idx] += 1
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            self._reservoir[self._res_pos] = value
            self._res_pos = (self._res_pos + 1) % RESERVOIR_SIZE

    def observe_bulk(self, count: int, total: float, sumsq: float,
                     lo: float, hi: float) -> None:
        """Merge pre-aggregated stats (e.g. from a vectorized numpy
        pass) without a per-value Python loop.  Bulk values land only
        in the implicit +Inf bucket and skip the quantile reservoir."""
        if count <= 0:
            return
        self.count += count
        self.total += total
        self._sumsq += sumsq
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def record_exemplar(self, value: float, label: str) -> None:
        """Remember ``label`` (a request id) as a slow-observation
        exemplar if ``value`` ranks among the largest seen.

        Kept separate from :meth:`observe` so callers opt in per
        observation — only the service's latency timers pay for it.
        One slot per distinct label: a retried request updates in
        place instead of crowding out other slow requests.
        """
        if not label:
            return
        exemplars = self._exemplars
        for i, (seen, existing) in enumerate(exemplars):
            if existing == label:
                if value > seen:
                    exemplars[i] = (value, label)
                    exemplars.sort(reverse=True)
                return
        if len(exemplars) >= EXEMPLAR_SLOTS:
            if value <= exemplars[-1][0]:
                return
            exemplars[-1] = (value, label)
        else:
            exemplars.append((value, label))
        exemplars.sort(reverse=True)

    def exemplars(self) -> list[tuple[float, str]]:
        """``(value, label)`` exemplars, largest first."""
        return list(self._exemplars)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self._sumsq / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    def percentiles(self) -> dict[str, float | None]:
        """Nearest-rank p50/p95/p99 over the sliding reservoir."""
        if not self._reservoir:
            return {f"p{int(q * 100)}": None for q in PERCENTILES}
        ordered = sorted(self._reservoir)
        out: dict[str, float | None] = {}
        for q in PERCENTILES:
            rank = max(0, math.ceil(q * len(ordered)) - 1)
            out[f"p{int(q * 100)}"] = ordered[rank]
        return out

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, Prometheus histogram style.

        The final implicit ``+Inf`` bucket equals ``count`` (bulk-merged
        values are counted there only).
        """
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self._bounds, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def snapshot(self) -> dict:
        snap = {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "stdev": self.stdev,
        }
        snap.update(self.percentiles())
        snap["buckets"] = [
            ["+Inf" if math.isinf(le) else le, n] for le, n in self.buckets()
        ]
        if self._exemplars:
            # Only present when recorded, so snapshots of instruments
            # that never opted in (and golden pins of them) are
            # unchanged.
            snap["exemplars"] = [[v, label] for v, label in self._exemplars]
        return snap


class Timer(Histogram):
    """A histogram of wall-clock durations (seconds) with a
    context-manager front end::

        with registry.timer("infer.clustering").time():
            ...
    """

    __slots__ = ("_clock",)
    kind = "timer"

    def __init__(self, name: str, clock=time.perf_counter):
        super().__init__(name)
        self._clock = clock

    @contextmanager
    def time(self) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.observe(self._clock() - start)


class Registry:
    """A flat, get-or-create namespace of instruments."""

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, **kwargs):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name, **kwargs)
        elif not isinstance(inst, cls) or type(inst) is not cls:
            raise ValueError(
                f"instrument {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str, clock=time.perf_counter) -> Timer:
        return self._get(name, Timer, clock=clock)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look up an instrument without creating it."""
        return self._instruments.get(name)

    def value(self, name: str, default=None):
        """Shortcut: the current value of a counter/gauge, or ``default``."""
        inst = self._instruments.get(name)
        if inst is None:
            return default
        return inst.value if hasattr(inst, "value") else inst.snapshot()

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain JSON-compatible data, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_prometheus(self, prefix: str = "mctop", extra: dict | None = None
                      ) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Counters become ``<prefix>_<name>_total``, gauges plain gauges,
        histograms/timers full histogram families (``_bucket``/``_sum``/
        ``_count``) plus a ``:quantile`` gauge family carrying the
        p50/p95/p99 estimates.  ``extra`` maps additional gauge names to
        values (e.g. tracer drop counts).
        """
        from repro.obs.prometheus import render_prometheus

        return render_prometheus(self.snapshot(), prefix=prefix, extra=extra)

    def reset(self) -> None:
        self._instruments.clear()

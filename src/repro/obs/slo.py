"""Declarative per-verb SLOs with multi-window burn-rate alerting.

An :class:`Objective` states what "good" means for one verb — a p99
latency target and an availability floor — and the :class:`SloEngine`
keeps score: every request is classified good/bad at observe time
(bad = errored *or* slower than the p99 target), counts accumulate in
small fixed-width time buckets, and alerts fire on **burn rate**: the
ratio of the observed bad fraction to the error budget
(``1 - availability``).  A burn rate of 1.0 spends the budget exactly
at the edge of compliance; 14.4 exhausts a 30-day budget in ~2 days.

Following the SRE-workbook multi-window pattern, each severity pairs a
short and a long window that must *both* be burning, which suppresses
the two classic false alarms: a brief spike (fails the long window)
and stale history (fails the short window).  The defaults —
fast = 5m/1h at 14.4×, slow = 30m/6h at 6× — are the canonical pairs,
scaled to whatever traffic fits in the process's uptime.

The engine is deliberately passive: it never spawns tasks.  Burn
evaluation piggybacks on ``observe`` (at most once per second) and on
the read-side accessors, so an idle daemon spends nothing and a busy
one spends O(objectives × buckets) per second.

Outputs, in decreasing order of urgency:

* ``/healthz`` degrades (503) while any fast-burn alert is active;
* ``slo.burn`` / ``slo.recovered`` events with verb + severity;
* ``slo.<verb>.burn_rate.fast|slow`` and ``slo.<verb>.alerting``
  gauges (rendered as ``slo_*`` on ``/metrics``);
* the ``slo`` verb's status document, the ``mctop top`` SLO panel,
  and :func:`check_loadgen_slo` — the loadgen gate reuses the same
  :class:`Objective` definitions instead of a hand-rolled threshold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "DEFAULT_OBJECTIVES",
    "FAST_BURN",
    "Objective",
    "SLOW_BURN",
    "SloEngine",
    "check_loadgen_slo",
    "parse_objective",
    "parse_objectives",
]


@dataclass(frozen=True)
class Objective:
    """What "good" means for one verb.

    A request is *bad* when it errors or exceeds ``p99_ms``; the
    objective is met while the bad fraction stays within the error
    budget ``1 - availability``.
    """

    verb: str
    p99_ms: float
    availability: float = 0.999

    def __post_init__(self):
        if not self.verb:
            raise ValueError("objective verb must be non-empty")
        if self.p99_ms <= 0:
            raise ValueError("p99_ms must be > 0")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability must be in (0, 1)")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.availability

    def to_dict(self) -> dict:
        return {
            "verb": self.verb,
            "p99_ms": self.p99_ms,
            "availability": self.availability,
        }


#: Conservative defaults for the service's three latency-bearing verbs:
#: an indexed placement lookup is sub-millisecond at p50, a split batch
#: amortises over the wire, an inference may legitimately run seconds.
DEFAULT_OBJECTIVES = (
    Objective("place", p99_ms=50.0),
    Objective("place_many", p99_ms=500.0),
    Objective("infer", p99_ms=5000.0, availability=0.99),
)


@dataclass(frozen=True)
class BurnPair:
    """A short/long window pair and the burn rate that trips both."""

    short_seconds: float
    long_seconds: float
    factor: float


#: SRE-workbook pairs: page-worthy fast burn, ticket-worthy slow burn.
FAST_BURN = BurnPair(short_seconds=300.0, long_seconds=3600.0, factor=14.4)
SLOW_BURN = BurnPair(short_seconds=1800.0, long_seconds=21600.0, factor=6.0)

_ALERT_LEVEL = {None: 0, "slow": 1, "fast": 2}


def parse_objective(spec: str) -> Objective:
    """``"VERB:p99=MS[,avail=FRACTION]"`` → :class:`Objective`.

    ``avail`` accepts a fraction (``0.999``) or a percentage
    (``99.9``); anything ≥ 1 is read as a percentage.
    """
    verb, sep, rest = spec.partition(":")
    verb = verb.strip()
    if not sep or not verb:
        raise ValueError(
            f"bad objective {spec!r}: expected VERB:p99=MS[,avail=PCT]"
        )
    p99_ms = None
    availability = 0.999
    for part in rest.split(","):
        key, eq, value = part.partition("=")
        key = key.strip()
        if not eq:
            raise ValueError(f"bad objective field {part!r} in {spec!r}")
        try:
            number = float(value)
        except ValueError:
            raise ValueError(
                f"bad objective value {value!r} in {spec!r}"
            ) from None
        if key == "p99":
            p99_ms = number
        elif key == "avail":
            availability = number / 100.0 if number >= 1.0 else number
        else:
            raise ValueError(f"unknown objective field {key!r} in {spec!r}")
    if p99_ms is None:
        raise ValueError(f"objective {spec!r} must set p99=MS")
    return Objective(verb, p99_ms=p99_ms, availability=availability)


def parse_objectives(specs) -> tuple[Objective, ...]:
    objectives = tuple(parse_objective(s) for s in specs)
    seen: set[str] = set()
    for objective in objectives:
        if objective.verb in seen:
            raise ValueError(f"duplicate objective for verb "
                             f"{objective.verb!r}")
        seen.add(objective.verb)
    return objectives


class _VerbState:
    """Rolling good/bad buckets plus the alert latch for one verb."""

    __slots__ = ("objective", "buckets", "alert", "burn",
                 "good_total", "bad_total")

    def __init__(self, objective: Objective):
        self.objective = objective
        #: list of [bucket_index, good, bad]; append-only at the tail,
        #: trimmed at the head once older than the longest window.
        self.buckets: list[list] = []
        self.alert: str | None = None
        self.burn = {"fast": 0.0, "slow": 0.0}
        self.good_total = 0
        self.bad_total = 0

    def window_counts(self, now_index: int, window_buckets: int):
        cutoff = now_index - window_buckets
        good = bad = 0
        for index, g, b in reversed(self.buckets):
            if index <= cutoff:
                break
            good += g
            bad += b
        return good, bad


class SloEngine:
    """Score requests against objectives; latch multi-window alerts."""

    def __init__(
        self,
        objectives=DEFAULT_OBJECTIVES,
        obs=None,
        events=None,
        clock=time.monotonic,
        fast: BurnPair = FAST_BURN,
        slow: BurnPair = SLOW_BURN,
        bucket_seconds: float = 5.0,
        min_requests: int = 10,
        eval_interval: float = 1.0,
    ):
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be > 0")
        self.objectives = tuple(objectives)
        self.obs = obs
        self.events = events
        self.fast = fast
        self.slow = slow
        self.bucket_seconds = bucket_seconds
        self.min_requests = min_requests
        self.eval_interval = eval_interval
        self._clock = clock
        self._states = {o.verb: _VerbState(o) for o in self.objectives}
        self._last_eval = float("-inf")
        self._max_window = max(fast.long_seconds, slow.long_seconds)
        self._gauges: dict[tuple[str, str], object] = {}

    # ----------------------------------------------------------- observe
    def observe(self, verb: str, duration_s: float, ok: bool = True) -> bool:
        """Score one request; returns True when it violated the SLO.

        The return value is the tail-sampling signal: the daemon passes
        it to ``TraceStore.finish`` so SLO-violating traces get pinned.
        Verbs without an objective are not scored and never violate.
        """
        state = self._states.get(verb)
        if state is None:
            return False
        bad = (not ok) or duration_s * 1e3 > state.objective.p99_ms
        index = int(self._clock() / self.bucket_seconds)
        buckets = state.buckets
        if buckets and buckets[-1][0] == index:
            tail = buckets[-1]
            tail[1] += 0 if bad else 1
            tail[2] += 1 if bad else 0
        else:
            buckets.append([index, 0 if bad else 1, 1 if bad else 0])
            self._trim(state, index)
        if bad:
            state.bad_total += 1
        else:
            state.good_total += 1
        self.maybe_evaluate()
        return bad

    def _trim(self, state: _VerbState, now_index: int) -> None:
        horizon = now_index - int(self._max_window / self.bucket_seconds) - 1
        buckets = state.buckets
        drop = 0
        while drop < len(buckets) and buckets[drop][0] <= horizon:
            drop += 1
        if drop:
            del buckets[:drop]

    # ---------------------------------------------------------- evaluate
    def maybe_evaluate(self) -> None:
        if self._clock() - self._last_eval >= self.eval_interval:
            self.evaluate()

    def evaluate(self) -> None:
        """Recompute burn rates and run the alert state machine."""
        now = self._clock()
        self._last_eval = now
        now_index = int(now / self.bucket_seconds)
        for verb, state in self._states.items():
            fast_active = self._pair_burning(state, now_index, self.fast)
            slow_active = self._pair_burning(state, now_index, self.slow)
            state.burn["fast"] = self._burn(state, now_index,
                                            self.fast.short_seconds)
            state.burn["slow"] = self._burn(state, now_index,
                                            self.slow.short_seconds)
            new_alert = ("fast" if fast_active
                         else "slow" if slow_active else None)
            if new_alert != state.alert:
                self._transition(verb, state, new_alert)
            self._export(verb, state)

    def _burn(self, state: _VerbState, now_index: int,
              window_seconds: float) -> float:
        window_buckets = max(1, int(window_seconds / self.bucket_seconds))
        good, bad = state.window_counts(now_index, window_buckets)
        total = good + bad
        if total < self.min_requests:
            return 0.0
        return (bad / total) / state.objective.error_budget

    def _pair_burning(self, state: _VerbState, now_index: int,
                      pair: BurnPair) -> bool:
        return (
            self._burn(state, now_index, pair.short_seconds) >= pair.factor
            and self._burn(state, now_index, pair.long_seconds) >= pair.factor
        )

    def _transition(self, verb: str, state: _VerbState,
                    new_alert: str | None) -> None:
        previous = state.alert
        state.alert = new_alert
        if self.events is None:
            return
        if new_alert is not None:
            self.events.emit(
                "slo.burn", verb=verb, severity=new_alert,
                burn_fast=round(state.burn["fast"], 2),
                burn_slow=round(state.burn["slow"], 2),
                previous=previous,
            )
        else:
            self.events.emit("slo.recovered", verb=verb, previous=previous)

    def _export(self, verb: str, state: _VerbState) -> None:
        if self.obs is None:
            return
        for kind in ("fast", "slow"):
            gauge = self._gauges.get((verb, kind))
            if gauge is None:
                gauge = self.obs.gauge(f"slo.{verb}.burn_rate.{kind}")
                self._gauges[(verb, kind)] = gauge
            gauge.set(round(state.burn[kind], 4))
        gauge = self._gauges.get((verb, "alerting"))
        if gauge is None:
            gauge = self.obs.gauge(f"slo.{verb}.alerting")
            self._gauges[(verb, "alerting")] = gauge
        gauge.set(_ALERT_LEVEL[state.alert])

    # -------------------------------------------------------------- read
    @property
    def degraded(self) -> bool:
        """True while any verb has an active fast-burn alert."""
        self.maybe_evaluate()
        return any(s.alert == "fast" for s in self._states.values())

    def status_doc(self) -> dict:
        """Shape served by the ``slo`` verb and the ``top`` SLO panel."""
        self.evaluate()
        objectives = {}
        for verb, state in self._states.items():
            objectives[verb] = {
                "p99_ms": state.objective.p99_ms,
                "availability": state.objective.availability,
                "alert": state.alert,
                "burn": {
                    "fast": round(state.burn["fast"], 4),
                    "slow": round(state.burn["slow"], 4),
                },
                "good": state.good_total,
                "bad": state.bad_total,
            }
        return {
            "enabled": True,
            "degraded": any(
                s.alert == "fast" for s in self._states.values()
            ),
            "objectives": objectives,
        }


def check_loadgen_slo(objectives, doc: dict) -> list[str]:
    """Judge a loadgen result document against objectives.

    Returns human-readable violation strings (empty = pass).  The
    loadgen measures the ``place`` verb's latency distribution, so its
    ``p99_ms`` is checked against the ``place`` objective (falling back
    to ``place_many`` if that is the only one given); availability is
    checked from the error/total counts when present.
    """
    violations: list[str] = []
    by_verb = {o.verb: o for o in objectives}
    latency = by_verb.get("place") or by_verb.get("place_many")
    if latency is not None and doc.get("p99_ms") is not None:
        if doc["p99_ms"] > latency.p99_ms:
            violations.append(
                f"SLO violated: p99 {doc['p99_ms']:.3f} ms > "
                f"objective {latency.p99_ms:.3f} ms ({latency.verb})"
            )
    total = doc.get("requests") or doc.get("total_requests") or (
        doc.get("n_place_frames", 0) + doc.get("n_infer_frames", 0) or None
    )
    errors = doc.get("errors") or doc.get("frame_errors") or 0
    if latency is not None and total:
        availability = 1.0 - errors / total
        if availability < latency.availability:
            violations.append(
                f"SLO violated: availability {availability:.5f} < "
                f"objective {latency.availability} ({latency.verb})"
            )
    return violations

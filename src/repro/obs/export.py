"""Exporters: observability data as JSON, Chrome ``trace_event`` files
and human-readable reports.

The Chrome format (load with ``chrome://tracing`` or
https://ui.perfetto.dev) is the JSON-object flavour::

    {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
                      "pid": 0, "tid": 0, "args": {...}}, ...],
     "displayTimeUnit": "ms"}

Spans become complete events (``ph: "X"``), instants become instant
events (``ph: "i"``) and the final value of every counter becomes a
counter event (``ph: "C"``) so the metrics ride along in the same file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import Registry
from repro.obs.tracer import Instant, Span, Tracer

_PID = 0
_TID = 0


def trace_to_events(tracer: Tracer) -> list[dict]:
    """The tracer's ring buffer as Chrome ``traceEvents`` entries."""
    events: list[dict] = []
    for event in tracer.events:
        if isinstance(event, Span):
            # Stitched worker spans (jobs=N chunks) get their own track
            # so the fan-out is visible next to the parent timeline.
            tid = _TID
            if event.stitched:
                tid = int(event.args.get("worker", 0)) + 1
            events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "ts": event.start_us,
                    "dur": event.dur_us,
                    "pid": _PID,
                    "tid": tid,
                    "args": dict(event.args),
                }
            )
        elif isinstance(event, Instant):
            events.append(
                {
                    "name": event.name,
                    "ph": "i",
                    "ts": event.ts_us,
                    "s": "t",  # thread-scoped instant
                    "pid": _PID,
                    "tid": _TID,
                    "args": dict(event.args),
                }
            )
    return events


def registry_to_events(registry: Registry, ts: float = 0.0) -> list[dict]:
    """Counter/gauge finals as Chrome counter events."""
    events: list[dict] = []
    for name, snap in registry.snapshot().items():
        if snap["kind"] in ("counter", "gauge") and snap["value"] is not None:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": _PID,
                    "tid": 0,
                    "args": {"value": snap["value"]},
                }
            )
    return events


def to_chrome_trace(tracer: Tracer, registry: Registry | None = None) -> dict:
    """A complete Chrome ``trace_event`` document."""
    events = trace_to_events(tracer)
    if registry is not None:
        last_ts = max((e["ts"] + e.get("dur", 0.0) for e in events),
                      default=0.0)
        events.extend(registry_to_events(registry, ts=last_ts))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "dropped_events": tracer.dropped,
        },
    }


def timeline_to_chrome(trace_doc: dict) -> dict:
    """An assembled fleet trace document as a Chrome trace.

    Input is the ``trace`` verb's response shape (``timeline`` entries
    carrying ``member`` tags, see
    :func:`repro.obs.trace_store.assemble_fleet_timeline`).  Each
    member becomes its own thread track, named via ``ph: "M"``
    metadata events, so the stitched router/member hierarchy reads as
    parallel swimlanes in Perfetto.
    """
    timeline = trace_doc.get("timeline") or []
    members: list = []
    for span in timeline:
        member = span.get("member")
        if member not in members:
            members.append(member)
    tid_of = {member: tid for tid, member in enumerate(members)}
    events: list[dict] = []
    for span in timeline:
        args = dict(span.get("args") or {})
        member = span.get("member")
        if member is not None:
            args["member"] = member
        events.append(
            {
                "name": span.get("name", "?"),
                "ph": "X",
                "ts": span.get("start_us", 0.0),
                "dur": span.get("dur_us", 0.0),
                "pid": _PID,
                "tid": tid_of.get(member, 0),
                "args": args,
            }
        )
    for member, tid in tid_of.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": str(member) if member is not None
                         else "local"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "request_id": trace_doc.get("request_id"),
            "missing_members": list(trace_doc.get("missing_members") or ()),
        },
    }


def write_chrome_trace(
    path: str | Path, tracer: Tracer, registry: Registry | None = None
) -> Path:
    """Write a Chrome trace file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer, registry), indent=1))
    return path


def to_json(tracer: Tracer, registry: Registry) -> dict:
    """Raw structured dump: every event plus a metrics snapshot."""
    return {
        "format": "repro-obs",
        "version": 1,
        "events": [e.to_dict() for e in tracer.events],
        "summary": tracer.summary(),
        "metrics": registry.snapshot(),
    }


def _fmt_value(snap: dict) -> str:
    if snap["kind"] in ("counter", "gauge"):
        value = snap["value"]
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)
    mean = snap["mean"]
    unit = " s" if snap["kind"] == "timer" else ""
    return (
        f"n={snap['count']} mean={mean:.4g}{unit} "
        f"min={snap['min']:.4g} max={snap['max']:.4g}"
        if snap["count"]
        else "n=0"
    )


def render_report(tracer: Tracer, registry: Registry) -> str:
    """Human-readable observability report (the ``trace`` subcommand)."""
    lines = ["observability report", "=" * 60, "spans:"]
    for span in tracer.spans():
        indent = "  " * (span.depth + 1)
        lines.append(
            f"{indent}{span.name:<{max(44 - 2 * span.depth, 8)}}"
            f"{span.dur_us / 1000.0:10.3f} ms"
        )
    if tracer.instants:
        lines.append("events:")
        for event in tracer.events:
            if isinstance(event, Instant):
                args = f"  {event.args}" if event.args else ""
                lines.append(f"  {event.name}{args}")
    if tracer.dropped:
        lines.append(f"  ({tracer.dropped} events dropped by the ring buffer)")
    lines.append("metrics:")
    for name, snap in registry.snapshot().items():
        lines.append(f"  {name:<44}{_fmt_value(snap)}")
    return "\n".join(lines)

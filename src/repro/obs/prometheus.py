"""Prometheus text exposition (format 0.0.4) from a registry snapshot.

The renderer works from the plain-dict :meth:`Registry.snapshot` shape
rather than live instruments so the exact same code path serves

* the daemon's HTTP ``/metrics`` endpoint (``--metrics-port``),
* ``mctop query metrics --format prom`` (client side, from the JSON the
  ``metrics`` verb returned), and
* :meth:`Registry.to_prometheus` for in-process callers.

Mapping (instrument → exposition):

========== =====================================================
counter    ``<prefix>_<name>_total`` (TYPE counter)
gauge      ``<prefix>_<name>`` (TYPE gauge)
histogram  ``<prefix>_<name>`` histogram family: cumulative
timer      ``_bucket{le="..."}`` lines, ``_sum``, ``_count``; plus a
           ``<prefix>_<name>:quantile{quantile="0.5|0.95|0.99"}``
           gauge family with the sliding-window estimates
========== =====================================================

Dotted instrument names (``service.latency.infer``) sanitize to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric-name alphabet by replacing every
illegal character with ``_``.
"""

from __future__ import annotations

import math
import re

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")

#: quantile keys a histogram/timer snapshot carries, in output order.
_QUANTILE_KEYS = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))

#: OpenMetrics exemplar payload: `{label="..."} value [timestamp]`.
_EXEMPLAR_OK = re.compile(r"^\{[^{}]*\}\s+\S+(?:\s+\S+)?$")


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map an instrument name onto the Prometheus metric alphabet."""
    full = f"{prefix}_{name}" if prefix else name
    full = _ILLEGAL.sub("_", full)
    if not full or not _NAME_OK.match(full):
        full = "_" + full
    return full


def _escape_label(value: str) -> str:
    """A label value escaped per the text exposition format: backslash,
    double quote and newline (anything else passes through verbatim)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    """Inverse of :func:`_escape_label` (exact round-trip)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _fmt(value: float | int | None) -> str:
    """One sample value, Prometheus style (+Inf/-Inf/NaN spelled out)."""
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _bucket_le(raw) -> str:
    """A snapshot bucket bound (number or "+Inf") as a label value."""
    if isinstance(raw, str):
        return raw
    if isinstance(raw, float) and math.isinf(raw):
        return "+Inf"
    return _fmt(float(raw))


def _exemplars_by_bucket(snap: dict) -> dict[str, tuple[float, str]]:
    """Assign a snapshot's exemplars to their histogram buckets.

    OpenMetrics allows at most one exemplar per ``_bucket`` line and
    requires the exemplar value to fall inside that bucket; each
    exemplar lands on the first bucket whose bound covers it, and when
    several compete for one bucket the largest value wins.
    """
    exemplars = snap.get("exemplars") or []
    if not exemplars:
        return {}
    bounds = []
    for raw_le, _count in snap.get("buckets", []):
        le = math.inf if isinstance(raw_le, str) else float(raw_le)
        bounds.append((le, _bucket_le(raw_le)))
    by_bucket: dict[str, tuple[float, str]] = {}
    for value, label in exemplars:
        for le, key in bounds:
            if value <= le:
                current = by_bucket.get(key)
                if current is None or value > current[0]:
                    by_bucket[key] = (value, str(label))
                break
    return by_bucket


def render_prometheus(
    snapshot: dict[str, dict],
    prefix: str = "mctop",
    extra: dict | None = None,
) -> str:
    """A full exposition document from a registry snapshot dict."""
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap.get("kind")
        metric = sanitize_metric_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {_fmt(snap['value'])}")
        elif kind == "gauge":
            if snap["value"] is None:
                continue
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(snap['value'])}")
        elif kind in ("histogram", "timer"):
            lines.append(f"# TYPE {metric} histogram")
            exemplars = _exemplars_by_bucket(snap)
            for raw_le, count in snap.get("buckets", []):
                line = f'{metric}_bucket{{le="{_bucket_le(raw_le)}"}} {count}'
                exemplar = exemplars.get(_bucket_le(raw_le))
                if exemplar is not None:
                    value, label = exemplar
                    line += (f' # {{request_id="{_escape_label(label)}"}} '
                             f"{_fmt(float(value))}")
                lines.append(line)
            lines.append(f"{metric}_sum {_fmt(snap['total'])}")
            lines.append(f"{metric}_count {snap['count']}")
            quantiles = [
                (label, snap.get(key))
                for key, label in _QUANTILE_KEYS
                if snap.get(key) is not None
            ]
            if quantiles:
                qmetric = f"{metric}:quantile"
                lines.append(f"# TYPE {qmetric} gauge")
                for label, value in quantiles:
                    lines.append(
                        f'{qmetric}{{quantile="{label}"}} {_fmt(value)}'
                    )
    for name, value in sorted((extra or {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """A strict-enough parser for tests and tooling.

    Returns ``{metric_name: [(labels, value), ...]}`` and raises
    :class:`ValueError` on malformed lines, undeclared types or illegal
    metric names — the parse-check the acceptance criteria call for.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    typed: set[str] = set()
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
    )
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if not _NAME_OK.match(parts[2]):
                raise ValueError(
                    f"line {lineno}: illegal metric name {parts[2]!r}"
                )
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        # OpenMetrics exemplar suffix: `<sample> # {labels} value [ts]`.
        # Validate its shape, then parse the sample part as usual.
        sample_part, hash_sep, exemplar_part = line.partition(" # ")
        if hash_sep:
            if not _EXEMPLAR_OK.match(exemplar_part):
                raise ValueError(
                    f"line {lineno}: malformed exemplar: {line!r}"
                )
            line = sample_part
        m = sample_re.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = m.group("name")
        base = re.sub(r"_(?:total|bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} precedes its TYPE line"
            )
        labels: dict[str, str] = {}
        if m.group("labels"):
            for part in m.group("labels").split(","):
                if not part:
                    continue
                key, _, raw = part.partition("=")
                if not raw.startswith('"') or not raw.endswith('"'):
                    raise ValueError(
                        f"line {lineno}: unquoted label value: {line!r}"
                    )
                labels[key.strip()] = _unescape_label(raw[1:-1])
        raw_value = m.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        else:
            value = float(raw_value)
        samples.setdefault(name, []).append((labels, value))
    return samples

"""Merging observability documents across fleet members.

The fleet router's ``metrics`` and ``drift`` verbs fan out to every
live member and answer with *one* document in the same shape a single
daemon produces, so every existing consumer — ``mctop top``, the
Prometheus renderer, the bench gate — works unchanged against a fleet.

Merge semantics per instrument kind:

* **counter** — summed.  ``service.inference.runs`` across the fleet is
  the fleet-wide MCTOP-ALG run count, which is exactly what the
  single-flight acceptance check reads.
* **gauge** — summed by default (queue depths, open connections and
  cache entries add up); gauges whose name carries a rank or timestamp
  semantic (``.severity.`` in the name, or a ``_ts`` / ``.last_check_ts``
  suffix) take the **max**, because "worst" and "most recent" are the
  meaningful fleet aggregates.
* **histogram / timer** — count/total summed, min of mins, max of
  maxes; the standard deviation is recombined exactly through the sum
  of squares (recovered from each member's count/mean/stdev); bucket
  counts are summed per bound; the p50/p95/p99 estimates take the max
  across members — a deliberately conservative fleet quantile (no
  member's tail is hidden by another's fast traffic).

Drift documents merge per machine: when two members watch the same
machine, the worst severity wins and the report notes which member it
came from.
"""

from __future__ import annotations

import math

from repro.obs.diff import severity_rank

#: Gauge-name fragments that switch the merge rule from sum to max.
#: Burn rates and alert levels are rank semantics: the fleet is burning
#: as fast as its worst member, not the sum of everyone's rates.
_MAX_GAUGE_MARKERS = (".severity.", ".burn_rate.")
_MAX_GAUGE_SUFFIXES = ("_ts", ".last_check_ts", ".alerting")

#: SLO alert severities in increasing order for merge ranking.
_ALERT_RANK = {None: 0, "slow": 1, "fast": 2}


def _rank(severity: object) -> int:
    """severity_rank that tolerates ``"unknown"``/missing values (-1)."""
    try:
        return severity_rank(severity)
    except (ValueError, TypeError):
        return -1


def _gauge_takes_max(name: str) -> bool:
    return any(m in name for m in _MAX_GAUGE_MARKERS) or \
        any(name.endswith(s) for s in _MAX_GAUGE_SUFFIXES)


def _merge_gauge(name: str, snaps: "list[dict]") -> dict:
    values = [s.get("value") for s in snaps if s.get("value") is not None]
    if not values:
        return {"kind": "gauge", "value": None}
    value = max(values) if _gauge_takes_max(name) else sum(values)
    return {"kind": "gauge", "value": value}


def _merge_counter(snaps: "list[dict]") -> dict:
    return {"kind": "counter",
            "value": sum(s.get("value") or 0 for s in snaps)}


def _sumsq(snap: dict) -> float:
    """Recover a member's sum of squares from count/mean/stdev."""
    count = snap.get("count") or 0
    mean = snap.get("mean") or 0.0
    stdev = snap.get("stdev") or 0.0
    return count * (stdev * stdev + mean * mean)


def _merge_histogram(kind: str, snaps: "list[dict]") -> dict:
    snaps = [s for s in snaps if s.get("count")]
    if not snaps:
        return {"kind": kind, "count": 0, "total": 0.0, "min": None,
                "max": None, "mean": 0.0, "stdev": 0.0,
                "p50": None, "p95": None, "p99": None, "buckets": []}
    count = sum(s["count"] for s in snaps)
    total = sum(s.get("total") or 0.0 for s in snaps)
    sumsq = sum(_sumsq(s) for s in snaps)
    mean = total / count if count else 0.0
    var = sumsq / count - mean * mean if count else 0.0
    merged: dict = {
        "kind": kind,
        "count": count,
        "total": total,
        "min": min(s["min"] for s in snaps if s.get("min") is not None),
        "max": max(s["max"] for s in snaps if s.get("max") is not None),
        "mean": mean,
        "stdev": math.sqrt(max(var, 0.0)),
    }
    for q in ("p50", "p95", "p99"):
        values = [s.get(q) for s in snaps if s.get(q) is not None]
        merged[q] = max(values) if values else None
    buckets: dict[object, int] = {}
    order: list[object] = []
    for snap in snaps:
        for le, n in snap.get("buckets") or []:
            if le not in buckets:
                buckets[le] = 0
                order.append(le)
            buckets[le] += n
    merged["buckets"] = [[le, buckets[le]] for le in order]
    exemplars: list[list] = []
    for snap in snaps:
        exemplars.extend(snap.get("exemplars") or [])
    if exemplars:
        # Fleet-wide slowest requests: union, largest first, same slot
        # budget a single member keeps.
        exemplars.sort(key=lambda e: e[0], reverse=True)
        merged["exemplars"] = [list(e) for e in exemplars[:5]]
    return merged


def merge_registry_snapshots(snapshots: "list[dict]") -> dict:
    """Merge :meth:`~repro.obs.registry.Registry.snapshot` documents.

    Instruments missing from some members merge over the members that
    have them; a name registered with different kinds on different
    members keeps the majority kind and skips the others (defensive —
    it cannot happen inside one fleet version).
    """
    names: list[str] = []
    seen: set[str] = set()
    for snapshot in snapshots:
        for name in snapshot:
            if name not in seen:
                seen.add(name)
                names.append(name)
    merged: dict[str, dict] = {}
    for name in sorted(names):
        snaps = [s[name] for s in snapshots if name in s]
        kinds = [s.get("kind") for s in snaps]
        kind = max(set(kinds), key=kinds.count)
        snaps = [s for s in snaps if s.get("kind") == kind]
        if kind == "counter":
            merged[name] = _merge_counter(snaps)
        elif kind == "gauge":
            merged[name] = _merge_gauge(name, snaps)
        elif kind in ("histogram", "timer"):
            merged[name] = _merge_histogram(kind, snaps)
        else:  # unknown future kind: keep the first member's view
            merged[name] = snaps[0]
    return merged


def merge_trace_summaries(summaries: "list[dict]") -> dict:
    """Sum the tracer health counts across members."""
    keys = ("finished_spans", "instants", "dropped", "dropped_spans")
    return {k: sum(int(s.get(k) or 0) for s in summaries) for k in keys}


def merge_cache_stats(stats: "list[dict]") -> dict:
    """Sum the numeric cache stats; ``store_dir`` becomes the list of
    distinct member stores (or ``None`` when no member has one)."""
    merged: dict = {}
    for key in ("memory_entries", "max_memory_entries", "hits_memory",
                "hits_disk", "misses", "evictions"):
        merged[key] = sum(int(s.get(key) or 0) for s in stats)
    dirs = sorted({s["store_dir"] for s in stats if s.get("store_dir")})
    merged["store_dir"] = dirs or None
    return merged


def merge_drift_docs(docs: "dict[str, dict]") -> dict:
    """Merge per-member ``drift`` verb documents (``{member: doc}``).

    Per machine the *worst* severity wins and the merged state records
    the member it came from; ``worst_severity``/``degraded`` cover the
    whole fleet.  Members running without a watcher contribute nothing
    but are listed, so a dashboard can tell "no watcher" from "ok".
    """
    machines: dict[str, dict] = {}
    members: dict[str, dict] = {}
    enabled = False
    for member_id, doc in sorted(docs.items()):
        member_enabled = bool(doc.get("enabled"))
        members[member_id] = {
            "enabled": member_enabled,
            "worst_severity": doc.get("worst_severity") if member_enabled
            else None,
        }
        if not member_enabled:
            continue
        enabled = True
        for name, state in (doc.get("machines") or {}).items():
            state = dict(state)
            state["member"] = member_id
            current = machines.get(name)
            if current is None or _rank(state.get("severity", "ok")) > \
                    _rank(current.get("severity", "ok")):
                machines[name] = state
    worst = "ok"
    for state in machines.values():
        severity = state.get("severity", "ok")
        if _rank(severity) > _rank(worst):
            worst = severity
    return {
        "enabled": enabled,
        "worst_severity": worst,
        "degraded": worst == "critical",
        "machines": machines,
        "members": members,
    }


def merge_slo_docs(docs: "dict[str, dict]") -> dict:
    """Merge per-member ``slo`` verb documents (``{member: doc}``).

    Per verb the *worst* alert wins (fast > slow > none) and the merged
    objective records the member it came from; burn rates take the max
    member-wise (the fleet burns as fast as its worst member); good/bad
    counts sum.  Members answering ``enabled: false`` are listed but
    contribute nothing, same contract as :func:`merge_drift_docs`.
    """
    objectives: dict[str, dict] = {}
    members: dict[str, dict] = {}
    enabled = False
    for member_id, doc in sorted(docs.items()):
        member_enabled = bool(doc.get("enabled"))
        members[member_id] = {
            "enabled": member_enabled,
            "degraded": bool(doc.get("degraded")) if member_enabled
            else None,
        }
        if not member_enabled:
            continue
        enabled = True
        for verb, state in (doc.get("objectives") or {}).items():
            state = dict(state)
            state["burn"] = dict(state.get("burn") or {})
            current = objectives.get(verb)
            if current is None:
                state["member"] = member_id
                objectives[verb] = state
                continue
            if _ALERT_RANK.get(state.get("alert"), 0) > \
                    _ALERT_RANK.get(current.get("alert"), 0):
                current["alert"] = state.get("alert")
                current["member"] = member_id
            for kind in ("fast", "slow"):
                current["burn"][kind] = max(
                    current["burn"].get(kind) or 0.0,
                    state["burn"].get(kind) or 0.0,
                )
            current["good"] = (current.get("good") or 0) + \
                (state.get("good") or 0)
            current["bad"] = (current.get("bad") or 0) + \
                (state.get("bad") or 0)
    return {
        "enabled": enabled,
        "degraded": any(
            o.get("alert") == "fast" for o in objectives.values()
        ),
        "objectives": objectives,
        "members": members,
    }


def merge_profile_docs(docs: "dict[str, dict]") -> dict:
    """Merge per-member ``profile`` verb documents (``{member: doc}``).

    Stack counts sum across members per ``(verb, stack)`` pair and each
    merged entry keeps a per-member breakdown keyed by member id;
    sample/drop totals and per-verb totals sum.  A per-request lookup's
    ``found`` is true when *any* member found the id (each member only
    profiled its own share of a fleet-wide request).  Members answering
    ``enabled: false`` are listed but contribute nothing, same contract
    as :func:`merge_drift_docs`.
    """
    members: dict[str, dict] = {}
    merged: dict[tuple, dict] = {}
    verbs: dict[str, int] = {}
    enabled = False
    samples = 0
    dropped = 0
    request_id = None
    found = None
    for member_id, doc in sorted(docs.items()):
        member_enabled = bool(doc.get("enabled"))
        members[member_id] = {
            "enabled": member_enabled,
            "samples": doc.get("samples") if member_enabled else None,
            "hz": doc.get("hz") if member_enabled else None,
            "running": doc.get("running") if member_enabled else None,
        }
        if not member_enabled:
            continue
        enabled = True
        samples += doc.get("samples") or 0
        dropped += doc.get("dropped") or 0
        for verb, count in (doc.get("verbs") or {}).items():
            verbs[verb] = verbs.get(verb, 0) + count
        if "request_id" in doc:
            request_id = doc["request_id"]
            found = bool(found) or bool(doc.get("found"))
        for entry in doc.get("stacks") or []:
            stack = tuple(entry.get("stack") or ())
            if not stack:
                continue
            key = (entry.get("verb"), stack)
            slot = merged.get(key)
            if slot is None:
                slot = merged[key] = {
                    "stack": list(stack),
                    "count": 0,
                    "verb": entry.get("verb"),
                    "members": {},
                }
            count = int(entry.get("count") or 0)
            slot["count"] += count
            slot["members"][member_id] = (
                slot["members"].get(member_id, 0) + count
            )
    stacks = sorted(
        merged.values(), key=lambda e: (-e["count"], e["stack"])
    )
    out = {
        "enabled": enabled,
        "samples": samples,
        "dropped": dropped,
        "distinct_stacks": len(stacks),
        "verbs": dict(sorted(verbs.items())),
        "stacks": stacks,
        "members": members,
    }
    if request_id is not None:
        out["request_id"] = request_id
        out["found"] = bool(found)
    return out

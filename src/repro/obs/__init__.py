"""repro.obs — zero-dependency tracing and metrics.

The observability layer of the reproduction (LIKWID-style always-on
lightweight instrumentation):

* :class:`Registry` — process-local counters, gauges, histograms and
  timers (:mod:`repro.obs.registry`);
* :class:`Tracer` — ring-buffered structured spans with parent/child
  nesting plus instant events (:mod:`repro.obs.tracer`);
* exporters — JSON, Chrome ``trace_event`` files and human-readable
  reports (:mod:`repro.obs.export`);
* :class:`Observability` — the container every instrumented layer
  carries (one per :class:`~repro.hardware.probes.MeasurementContext`
  or :class:`~repro.sim.engine.Engine`).
"""

from __future__ import annotations

import time

from repro.obs.diff import (
    DriftFinding,
    DriftReport,
    DriftThresholds,
    compare_mctops,
)
from repro.obs.events import EventLog, RotatingNdjsonWriter
from repro.obs.merge import (
    merge_cache_stats,
    merge_drift_docs,
    merge_profile_docs,
    merge_registry_snapshots,
    merge_slo_docs,
    merge_trace_summaries,
)
from repro.obs.profiler import (
    ProfileStore,
    SamplingProfiler,
    collapsed_stacks,
    speedscope_doc,
)
from repro.obs.export import (
    render_report,
    timeline_to_chrome,
    to_chrome_trace,
    to_json,
    write_chrome_trace,
)
from repro.obs.prometheus import render_prometheus, sanitize_metric_name
from repro.obs.registry import Counter, Gauge, Histogram, Registry, Timer
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    Objective,
    SloEngine,
    check_loadgen_slo,
    parse_objectives,
)
from repro.obs.trace_store import (
    TraceStore,
    assemble_fleet_timeline,
    record_timeline,
    render_timeline,
)
from repro.obs.tracer import Instant, Span, Tracer


class Observability:
    """One registry + one tracer, travelling together.

    Every instrumented object (measurement context, simulation engine)
    owns — or is handed — an ``Observability``; sharing one instance
    across layers produces a single coherent trace for a whole run.
    """

    def __init__(self, capacity: int = 8192, clock=time.perf_counter):
        self.registry = Registry()
        self.tracer = Tracer(capacity=capacity, clock=clock)

    # Shortcuts so call sites read ``obs.counter("x").inc()``.
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def timer(self, name: str) -> Timer:
        return self.registry.timer(name)

    def span(self, name: str, **args):
        return self.tracer.span(name, **args)

    def instant(self, name: str, **args) -> None:
        self.tracer.instant(name, **args)

    def summary(self) -> dict:
        """Deterministic run summary (counts only, no wall-clock data) —
        what :class:`~repro.core.mctop.Provenance` carries."""
        trace = self.tracer.summary()
        counters = {
            name: snap["value"]
            for name, snap in self.registry.snapshot().items()
            if snap["kind"] == "counter"
        }
        return {
            "spans": trace["finished_spans"],
            "instants": trace["instants"],
            "dropped_events": trace["dropped"],
            "counters": counters,
        }

    def report(self) -> str:
        return render_report(self.tracer, self.registry)

    def chrome_trace(self) -> dict:
        return to_chrome_trace(self.tracer, self.registry)

    def write_chrome_trace(self, path):
        return write_chrome_trace(path, self.tracer, self.registry)


__all__ = [
    "Counter",
    "DEFAULT_OBJECTIVES",
    "DriftFinding",
    "DriftReport",
    "DriftThresholds",
    "EventLog",
    "Gauge",
    "Histogram",
    "Instant",
    "Objective",
    "Observability",
    "ProfileStore",
    "Registry",
    "RotatingNdjsonWriter",
    "SamplingProfiler",
    "SloEngine",
    "Span",
    "Timer",
    "TraceStore",
    "Tracer",
    "assemble_fleet_timeline",
    "check_loadgen_slo",
    "collapsed_stacks",
    "compare_mctops",
    "merge_profile_docs",
    "merge_slo_docs",
    "parse_objectives",
    "speedscope_doc",
    "record_timeline",
    "render_prometheus",
    "render_report",
    "render_timeline",
    "sanitize_metric_name",
    "timeline_to_chrome",
    "to_chrome_trace",
    "to_json",
    "write_chrome_trace",
]

"""Bench history and the performance-regression gate.

Two pieces that make ``mctop bench`` a trend, not a single data point:

* **history** — every bench run can append one JSONL record per
  ``(machine, mode)`` to ``BENCH_HISTORY.jsonl`` (timestamp, git sha,
  wall time, throughput, speedup), so the cost of the measurement
  engine is traceable commit over commit;
* **gate** — ``compare_bench`` diffs a current bench document against
  a baseline per ``(machine, mode)`` and flags any metric that moved
  past a threshold in the losing direction, which ``mctop bench
  --compare`` turns into a non-zero exit for CI.

The default gate metric is ``speedup_vs_scalar``: a *ratio of two
timings from the same run on the same host*, so a checked-in baseline
stays meaningful on differently-powered CI runners where absolute
wall seconds would not.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any

#: Metrics the gate knows, mapped to whether smaller values win.
#: ``place_qps`` / ``p99_ms`` come from ``mctop loadgen`` (placement
#: service throughput and tail latency); the rest from ``mctop bench``.
GATE_METRICS = {
    "speedup_vs_scalar": False,
    "samples_per_sec": False,
    "machines_per_sec": False,
    "wall_seconds": True,
    "place_qps": False,
    "p99_ms": True,
}

#: Per-mode stats carried into a history record when present (beyond
#: the always-there bench triple) — the loadgen mode's throughput and
#: latency percentiles ride the same history file as bench records.
OPTIONAL_STATS = (
    "machines_per_sec",
    "place_qps",
    "p50_ms",
    "p99_ms",
    "p999_ms",
    "achieved_rate",
    "target_rate",
)

DEFAULT_METRIC = "speedup_vs_scalar"
DEFAULT_THRESHOLD = 0.15
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The current short commit sha, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


# ---------------------------------------------------------------- history
def history_records(
    doc: dict, ts: float | None = None, sha: str | None = None
) -> list[dict[str, Any]]:
    """Flatten one bench document into per-(machine, mode) records."""
    ts = time.time() if ts is None else ts
    records = []
    for entry in doc.get("machines", []):
        for mode, stats in sorted(entry.get("modes", {}).items()):
            record = {
                "ts": round(ts, 3),
                "sha": sha,
                "machine": entry["machine"],
                "mode": mode,
                "wall_seconds": stats["wall_seconds"],
                "samples_per_sec": stats["samples_per_sec"],
                "speedup_vs_scalar": stats["speedup_vs_scalar"],
                "repetitions": entry.get("repetitions"),
                "quick": doc.get("quick", False),
                "seed": doc.get("seed"),
                "jobs": stats.get("jobs"),
            }
            for name in OPTIONAL_STATS:
                if name in stats:
                    record[name] = stats[name]
            records.append(record)
    return records


def append_history(
    doc: dict,
    path: str | Path,
    ts: float | None = None,
    sha: str | None = None,
) -> int:
    """Append the document's records to the JSONL history file.

    Append-only by design — the file is a log, the way BENCH_*.json
    files are snapshots.  Returns the number of records written.
    """
    if sha is None:
        sha = git_sha()
    records = history_records(doc, ts=ts, sha=sha)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    return len(records)


def read_history(path: str | Path) -> list[dict]:
    """Every record of a JSONL history file, oldest first."""
    records = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), 1
    ):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: corrupt history line: {exc}"
            ) from None
    return records


# ------------------------------------------------------------------ gate
def _flatten(doc: dict) -> dict[tuple[str, str], dict]:
    """``{(machine, mode): stats}`` from either supported shape."""
    if doc.get("format") == "mctop-bench" or "machines" in doc:
        return {
            (entry["machine"], mode): stats
            for entry in doc.get("machines", [])
            for mode, stats in entry.get("modes", {}).items()
        }
    raise ValueError("not a bench document (missing 'machines')")


def load_baseline(path: str | Path) -> dict[tuple[str, str], dict]:
    """A baseline from a bench JSON document *or* a JSONL history file.

    History files contribute their **latest** record per
    ``(machine, mode)``, so pointing ``--compare`` at
    ``BENCH_HISTORY.jsonl`` gates against the previous run.
    """
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    # A one-record JSONL history is itself valid JSON; only treat the
    # file as a bench snapshot when it actually has the bench shape.
    if isinstance(doc, dict) and (
            doc.get("format") == "mctop-bench" or "machines" in doc):
        return _flatten(doc)
    baseline: dict[tuple[str, str], dict] = {}
    for record in read_history(path):
        if "machine" not in record or "mode" not in record:
            raise ValueError(
                "not a bench document (missing 'machines') and not a "
                "history record (missing 'machine'/'mode')"
            )
        baseline[(record["machine"], record["mode"])] = record
    if not baseline:
        raise ValueError(f"baseline {path} holds no bench records")
    return baseline


def compare_bench(
    current: dict,
    baseline: dict[tuple[str, str], dict],
    metric: str = DEFAULT_METRIC,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict[str, Any]:
    """Per-(machine, mode) regression verdicts for one metric.

    A pair regresses when the metric moved past ``threshold``
    (fractionally) in its losing direction — below the baseline for
    higher-is-better metrics, above it for ``wall_seconds``.  Pairs
    present on only one side are reported in ``missing`` but never
    fail the gate (machine catalogs legitimately grow).
    """
    if metric not in GATE_METRICS:
        raise ValueError(
            f"unknown gate metric {metric!r} "
            f"(known: {', '.join(sorted(GATE_METRICS))})"
        )
    if not 0 <= threshold < 1:
        raise ValueError("threshold must be in [0, 1)")
    smaller_wins = GATE_METRICS[metric]
    current_flat = _flatten(current)
    rows = []
    for key in sorted(set(current_flat) & set(baseline)):
        base_value = float(baseline[key][metric])
        cur_value = float(current_flat[key][metric])
        if base_value == 0:
            delta = 0.0
        elif smaller_wins:
            delta = (cur_value - base_value) / base_value
        else:
            delta = (base_value - cur_value) / base_value
        rows.append({
            "machine": key[0],
            "mode": key[1],
            "baseline": base_value,
            "current": cur_value,
            # positive delta == got worse, whatever the direction
            "delta": round(delta, 4),
            "regressed": delta > threshold,
        })
    missing = sorted(
        set(current_flat).symmetric_difference(baseline)
    )
    regressions = [r for r in rows if r["regressed"]]
    return {
        "metric": metric,
        "threshold": threshold,
        "rows": rows,
        "regressions": regressions,
        "missing": [list(pair) for pair in missing],
        "ok": bool(rows) and not regressions,
    }


def render_verdict_table(comparison: dict) -> str:
    """The human-readable gate verdict ``mctop bench --compare`` prints."""
    metric = comparison["metric"]
    threshold = comparison["threshold"]
    lines = [
        f"{'MACHINE':<12}{'MODE':<10}{'BASELINE':>12}{'CURRENT':>12}"
        f"{'DELTA':>9}  VERDICT"
    ]
    for row in comparison["rows"]:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"{row['machine']:<12}{row['mode']:<10}"
            f"{row['baseline']:>12.3f}{row['current']:>12.3f}"
            f"{row['delta']:>8.1%}  {verdict}"
        )
    for machine, mode in comparison["missing"]:
        lines.append(f"{machine:<12}{mode:<10}{'-':>12}{'-':>12}"
                     f"{'-':>9}  (one side only)")
    n_reg = len(comparison["regressions"])
    if comparison["ok"]:
        lines.append(
            f"gate: ok — no {metric} regression beyond {threshold:.0%} "
            f"across {len(comparison['rows'])} (machine, mode) pairs"
        )
    elif not comparison["rows"]:
        lines.append("gate: FAILED — baseline and current share no "
                     "(machine, mode) pairs")
    else:
        lines.append(
            f"gate: FAILED — {n_reg} of {len(comparison['rows'])} "
            f"(machine, mode) pairs regressed {metric} beyond "
            f"{threshold:.0%}"
        )
    return "\n".join(lines)

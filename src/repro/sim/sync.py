"""Synchronization primitives for the simulation engine."""

from __future__ import annotations

from repro.errors import SimulationError


class Barrier:
    """A reusable barrier for a fixed set of participants.

    Crossing the barrier costs the coherence round-trip of the farthest
    participant pair — a topology-aware sense-reversing barrier would
    pay exactly that, which makes barrier cost placement-sensitive like
    everything else in the engine.
    """

    def __init__(self, parties: int, crossing_cost: float | None = None):
        if parties < 1:
            raise SimulationError("a barrier needs at least one party")
        self.parties = parties
        self.crossing_cost = crossing_cost
        self._waiting: list = []
        self.crossings = 0

    def _arrive(self, engine, thread) -> None:
        self._waiting.append(thread)
        if len(self._waiting) < self.parties:
            engine.block(thread)
            return
        cost = self.crossing_cost
        if cost is None:
            ctxs = [t.ctx for t in self._waiting]
            cost = 0.0
            if len(ctxs) > 1:
                cost = float(
                    max(
                        engine.machine.comm_latency(a, b)
                        for i, a in enumerate(ctxs)
                        for b in ctxs[i + 1:]
                    )
                )
        waiters, self._waiting = self._waiting, []
        self.crossings += 1
        for t in waiters:
            engine.wake(t, engine.now + cost)


class Flag:
    """A one-shot signal: waiters block until someone sets it."""

    def __init__(self) -> None:
        self.is_set = False
        self._waiting: list = []
        self._set_time: float | None = None

    def _arrive(self, engine, thread) -> None:
        # Used via BarrierWait duck-typing: Flag can be waited on too.
        if self.is_set:
            engine.wake(thread, engine.now)
        else:
            self._waiting.append(thread)
            engine.block(thread)

    def set(self, engine) -> None:
        """Wake every waiter, paying the signal's coherence latency."""
        self.is_set = True
        self._set_time = engine.now
        waiters, self._waiting = self._waiting, []
        for t in waiters:
            engine.wake(t, engine.now)

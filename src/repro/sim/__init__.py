"""Discrete-event execution engine for placement-sensitive workloads."""

from repro.sim.commands import (
    Acquire,
    BarrierWait,
    Communicate,
    Compute,
    MemChase,
    MemStream,
    Release,
    Sleep,
)
from repro.sim.engine import Engine, RunStats, SimThread
from repro.sim.sync import Barrier, Flag

__all__ = [
    "Acquire",
    "Barrier",
    "BarrierWait",
    "Communicate",
    "Compute",
    "Engine",
    "Flag",
    "MemChase",
    "MemStream",
    "Release",
    "RunStats",
    "SimThread",
    "Sleep",
]

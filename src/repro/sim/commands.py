"""Commands a simulated thread can yield to the engine.

A simulated program is a Python generator: it yields command objects
and receives control back when the engine has accounted for them.  The
vocabulary mirrors what placement-sensitive code actually does on a
NUMA machine: compute, stream memory, chase pointers, communicate over
the coherence fabric, synchronize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Compute:
    """Busy CPU work; slowed down by active SMT siblings and DVFS."""

    cycles: float


@dataclass(frozen=True)
class MemStream:
    """Sequential (bandwidth-bound) access of ``n_bytes`` on a node.

    Concurrent streams to the same (socket, node) channel share its
    bandwidth fairly; the share is evaluated when the stream is issued,
    which is exact for the barrier-phased workloads of this package.
    """

    node: int
    n_bytes: float


@dataclass(frozen=True)
class MemChase:
    """Dependent (latency-bound) accesses: ``accesses`` serial misses."""

    node: int
    accesses: float


@dataclass(frozen=True)
class Communicate:
    """One coherence round-trip with another hardware context."""

    peer_ctx: int


@dataclass(frozen=True)
class Sleep:
    """Idle wait (no busy work, no SMT pressure on the sibling)."""

    cycles: float


@dataclass(frozen=True)
class BarrierWait:
    """Block until every participant of the barrier arrives."""

    barrier: Any  # sim.sync.Barrier


@dataclass(frozen=True)
class Acquire:
    """Acquire a lock (blocking; delay model lives in the lock)."""

    lock: Any  # apps.locks algorithm object


@dataclass(frozen=True)
class Release:
    """Release a lock previously acquired."""

    lock: Any


Command = (
    Compute
    | MemStream
    | MemChase
    | Communicate
    | Sleep
    | BarrierWait
    | Acquire
    | Release
)

"""Discrete-event execution engine over a simulated machine.

Threads are Python generators pinned to hardware contexts; they yield
:mod:`repro.sim.commands` and the engine advances virtual time (in
cycles at the machine's maximum frequency), pricing every command from
the machine model:

* ``Compute`` pays SMT interference when siblings compute concurrently;
* ``MemStream`` shares each (socket, node) channel's bandwidth among
  its concurrent streams;
* ``MemChase`` pays the NUMA latency of every dependent access;
* ``Communicate`` pays the coherence latency between two contexts;
* locks and barriers delegate to their objects (see
  :mod:`repro.apps.locks` and :mod:`repro.sim.sync`).

When the machine has a power profile the engine also integrates energy:
package power is a function of which contexts are active, sampled at
every scheduling event.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.obs import Observability
from repro.sim.commands import (
    Acquire,
    BarrierWait,
    Communicate,
    Compute,
    MemChase,
    MemStream,
    Release,
    Sleep,
)

Program = Generator[Any, None, Any]


@dataclass
class SimThread:
    """One simulated thread pinned to a hardware context."""

    tid: int
    ctx: int
    program: Program
    name: str = ""
    finished: bool = False
    result: Any = None
    busy_cycles: float = 0.0
    blocked_cycles: float = 0.0
    blocked: bool = False
    computing: bool = False
    block_start: float | None = None

    def __hash__(self) -> int:
        return self.tid


@dataclass
class RunStats:
    """What a finished simulation reports.

    ``per_thread_blocked`` is the lock/barrier wait time per thread and
    ``metrics`` a snapshot of the engine's observability registry (lock
    acquisitions, bandwidth-contention events, energy samples, ...).
    """

    cycles: float
    seconds: float
    energy_joules: float | None
    per_thread_busy: dict[int, float] = field(default_factory=dict)
    per_thread_blocked: dict[int, float] = field(default_factory=dict)
    results: dict[int, Any] = field(default_factory=dict)
    metrics: dict[str, dict] = field(default_factory=dict)


class Engine:
    """The event loop: a heap of (time, action) callbacks."""

    def __init__(self, machine: Machine, track_energy: bool = False,
                 obs: Observability | None = None):
        self.machine = machine
        self.obs = obs if obs is not None else Observability()
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.threads: list[SimThread] = []
        self._channels: dict[tuple[int, int], _Channel] = {}
        self._energy: float | None = None
        self._power_model = None
        if track_energy:
            from repro.hardware.power import PowerModel

            self._power_model = PowerModel(machine)
            self._energy = 0.0
            self._last_energy_time = 0.0

    # ----------------------------------------------------------- spawning
    def spawn(self, ctx: int, program: Program, name: str = "") -> SimThread:
        self.machine._check_ctx(ctx)
        thread = SimThread(tid=len(self.threads), ctx=ctx, program=program,
                           name=name or f"t{len(self.threads)}")
        self.threads.append(thread)
        self.obs.counter("sim.threads_spawned").inc()
        self._at(self.now, lambda: self._step(thread))
        return thread

    def _at(self, when: float, action: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, action))

    # ------------------------------------------------------------ pricing
    def _computing_siblings(self, thread: SimThread) -> int:
        core = self.machine.core_of(thread.ctx)
        return sum(
            1
            for t in self.threads
            if t is not thread
            and not t.finished
            and t.computing
            and self.machine.core_of(t.ctx) == core
        )

    def smt_factor(self, thread: SimThread) -> float:
        """Compute-slowdown from SMT siblings currently computing."""
        siblings = self._computing_siblings(thread)
        slow = self.machine.spec.smt_slowdown
        return 1.0 + siblings * (slow - 1.0)

    def _node_streams(self, node: int) -> int:
        """Streams currently targeting a node, across all sockets."""
        return sum(
            len(ch.streams)
            for (s, n), ch in self._channels.items()
            if n == node
        )

    def _stream_rate(self, key: tuple[int, int], sharers: int) -> float:
        """Per-stream bytes/cycle on a channel with ``sharers`` streams.

        Three limits apply: what a single thread can pull, the channel's
        path capacity (local controller or interconnect link), and the
        node's DRAM itself — sockets streaming from the same node share
        its DRAM bandwidth, they do not add to it.
        """
        socket, node = key
        cap = self.machine.mem_bandwidth(socket, node)
        single = self.machine.mem_bandwidth_single(socket, node)
        home = self.machine.socket_of_node(node)
        node_cap = self.machine.mem_bandwidth(home, node)
        node_streams = max(self._node_streams(node), sharers, 1)
        per_thread = min(single, cap / max(sharers, 1), node_cap / node_streams)
        return max(per_thread / self.machine.spec.freq_max_ghz, 1e-12)

    def _advance_channel(self, key: tuple[int, int], ch: "_Channel") -> None:
        """Progress every active stream of a channel up to ``now``."""
        dt = self.now - ch.last_update
        if dt > 0 and ch.streams:
            rate = self._stream_rate(key, len(ch.streams))
            for state in ch.streams.values():
                state[0] = max(state[0] - rate * dt, 0.0)
        ch.last_update = self.now

    def _rebalance_channel(self, key: tuple[int, int], ch: "_Channel") -> None:
        """Reschedule the channel's next completion after a change.

        Only the *earliest* finisher gets an event (one heap push per
        membership change instead of one per stream); when it fires,
        every stream that has drained by then completes together.
        """
        ch.epoch += 1
        epoch = ch.epoch
        if not ch.streams:
            return
        if len(ch.streams) > 1:
            # Several streams now share this channel's bandwidth.
            self.obs.counter("sim.bw_contention_events").inc()
            self.obs.histogram("sim.bw_sharers").observe(len(ch.streams))
        rate = self._stream_rate(key, len(ch.streams))
        next_done = min(state[0] for state in ch.streams.values()) / rate
        # Never schedule below the current time's float resolution: a
        # nearly-drained stream would otherwise fire at `now` forever.
        import math

        next_done = max(next_done, math.ulp(self.now))
        self._at(
            self.now + next_done,
            lambda e=epoch: self._channel_event(key, e),
        )

    def _advance_node_channels(self, node: int) -> None:
        for (s, n), ch in self._channels.items():
            if n == node:
                self._advance_channel((s, n), ch)

    def _rebalance_node_channels(self, node: int) -> None:
        # A membership change on one channel shifts the DRAM share of
        # every other channel reading the same node.
        for (s, n), ch in self._channels.items():
            if n == node:
                self._rebalance_channel((s, n), ch)

    def _channel_event(self, key: tuple[int, int], epoch: int) -> None:
        ch = self._channels[key]
        if epoch != ch.epoch:
            return  # stale event
        self._advance_node_channels(key[1])
        # "Finished" is judged in time, not bytes: anything that would
        # drain within a micro-cycle is done (bytes-level thresholds
        # dead-lock against float resolution at large timestamps).
        rate = self._stream_rate(key, len(ch.streams) or 1)
        threshold = max(rate * 1e-3, 1e-6)
        finished = [
            (thread, state)
            for thread, state in ch.streams.items()
            if state[0] <= threshold
        ]
        for thread, state in finished:
            del ch.streams[thread]
            thread.busy_cycles += self.now - state[1]
        self._rebalance_node_channels(key[1])
        for thread, _ in finished:
            self._step(thread)

    # ---------------------------------------------------------- main loop
    def run(self, max_cycles: float = float("inf")) -> RunStats:
        """Run every thread to completion (or fail at ``max_cycles``)."""
        events = 0
        with self.obs.span("sim.run", n_threads=len(self.threads)):
            while self._heap:
                at, _, action = heapq.heappop(self._heap)
                if at > max_cycles:
                    raise SimulationError(
                        f"simulation exceeded {max_cycles} cycles — deadlock "
                        "or runaway program?"
                    )
                self._account_energy(at)
                self.now = at
                events += 1
                action()
        stuck = [t.name for t in self.threads if not t.finished]
        if stuck:
            raise SimulationError(
                f"threads {stuck} never finished (lock/barrier deadlock?)"
            )
        self.obs.counter("sim.events").inc(events)
        self.obs.gauge("sim.cycles").set(self.now)
        busy_hist = self.obs.histogram("sim.thread_busy_cycles")
        blocked_hist = self.obs.histogram("sim.thread_blocked_cycles")
        for t in self.threads:
            busy_hist.observe(t.busy_cycles)
            blocked_hist.observe(t.blocked_cycles)
        spec = self.machine.spec
        seconds = self.now / (spec.freq_max_ghz * 1e9)
        return RunStats(
            cycles=self.now,
            seconds=seconds,
            energy_joules=self._energy,
            per_thread_busy={t.tid: t.busy_cycles for t in self.threads},
            per_thread_blocked={
                t.tid: t.blocked_cycles for t in self.threads
            },
            results={t.tid: t.result for t in self.threads},
            metrics=self.obs.registry.snapshot(),
        )

    def _step(self, thread: SimThread) -> None:
        thread.blocked = False
        thread.computing = False
        try:
            command = next(thread.program)
        except StopIteration as stop:
            thread.finished = True
            thread.result = stop.value
            return
        self._dispatch(thread, command)

    def _dispatch(self, thread: SimThread, command: Any) -> None:
        if isinstance(command, Compute):
            factor = self.smt_factor(thread)
            if factor > 1.0:
                self.obs.counter("sim.smt_contended_computes").inc()
            duration = command.cycles * factor
            thread.computing = True
            thread.busy_cycles += duration
            self._at(self.now + duration, lambda: self._step(thread))
        elif isinstance(command, MemStream):
            self.obs.counter("sim.mem_streams").inc()
            socket = self.machine.socket_of(thread.ctx)
            key = (socket, command.node)
            ch = self._channels.setdefault(key, _Channel())
            self._advance_node_channels(command.node)
            ch.streams[thread] = [float(command.n_bytes), self.now]
            self._rebalance_node_channels(command.node)
        elif isinstance(command, MemChase):
            socket = self.machine.socket_of(thread.ctx)
            duration = command.accesses * self.machine.mem_latency(
                socket, command.node
            )
            thread.busy_cycles += duration
            self._at(self.now + duration, lambda: self._step(thread))
        elif isinstance(command, Communicate):
            duration = float(
                self.machine.comm_latency(thread.ctx, command.peer_ctx)
            )
            thread.busy_cycles += duration
            self._at(self.now + duration, lambda: self._step(thread))
        elif isinstance(command, Sleep):
            self._at(self.now + command.cycles, lambda: self._step(thread))
        elif isinstance(command, BarrierWait):
            self.obs.counter("sim.barrier_waits").inc()
            command.barrier._arrive(self, thread)
        elif isinstance(command, Acquire):
            self.obs.counter("sim.lock_acquires").inc()
            command.lock._request(self, thread)
        elif isinstance(command, Release):
            self.obs.counter("sim.lock_releases").inc()
            command.lock._release(self, thread)
        else:
            raise SimulationError(f"unknown command {command!r}")

    # --------------------------------------------------------- wake/block
    def wake(self, thread: SimThread, at: float) -> None:
        """Used by locks and barriers to resume a blocked thread."""
        if at < self.now:
            raise SimulationError("cannot wake a thread in the past")
        if thread.block_start is not None:
            # The blocked interval ends when the thread actually resumes.
            thread.blocked_cycles += at - thread.block_start
            thread.block_start = None
        thread.blocked = False
        self._at(at, lambda: self._step(thread))

    def block(self, thread: SimThread) -> None:
        thread.blocked = True
        thread.block_start = self.now
        self.obs.counter("sim.blocks").inc()

    # ------------------------------------------------------------- energy
    def _account_energy(self, at: float) -> None:
        if self._power_model is None:
            return
        dt_cycles = at - self._last_energy_time
        if dt_cycles <= 0:
            return
        active = [
            t.ctx for t in self.threads if not t.finished and not t.blocked
        ]
        watts = sum(
            self._power_model.estimate(
                active,
                with_dram=True,
                sockets=range(self.machine.spec.n_sockets),
            ).values()
        )
        seconds = dt_cycles / (self.machine.spec.freq_max_ghz * 1e9)
        self._energy += watts * seconds
        self._last_energy_time = at
        self.obs.counter("sim.energy_samples").inc()
        self.obs.histogram("sim.power_watts").observe(watts)


class _Channel:
    """Fair-shared memory channel: one per (socket, node) pair.

    ``streams`` maps each active thread to ``[remaining_bytes,
    start_time]``; completions are rescheduled (with an epoch tag to
    cancel stale events) whenever a stream joins or leaves.
    """

    __slots__ = ("streams", "last_update", "epoch")

    def __init__(self) -> None:
        self.streams: dict[SimThread, list[float]] = {}
        self.last_update = 0.0
        self.epoch = 0

"""Exception hierarchy for the repro (MCTOP) library.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to discriminate the individual failure modes the
paper describes (e.g. unsuccessful clustering of latency values,
Section 3.6).  :class:`MctopError` remains the base of the
topology-related errors and is itself a :class:`ReproError`, so legacy
``except MctopError`` call sites keep working unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every error raised by the repro library."""


class MctopError(ReproError):
    """Base class for all topology/measurement errors."""


class ConfigError(MctopError):
    """A configuration document or knob combination is invalid.

    Raised by :meth:`LatencyTableConfig.from_dict` for unknown keys and
    by config validation for impossible knob combinations (e.g.
    ``jobs > 1`` with the strictly sequential sampling scheme).
    """


class MachineModelError(MctopError):
    """An inconsistency in a simulated machine specification."""


class MeasurementError(MctopError):
    """A measurement could not be completed or stabilized.

    Mirrors libmctop's behaviour of giving up when the standard deviation
    of repeated samples stays above the (relaxed) threshold.
    """


class ClusteringError(MctopError):
    """Latency values could not be clustered into coherent groups.

    The paper (Section 3.6, "Unsuccessful Clustering of Latency Values")
    reports an error and asks the user to retry in this situation.
    """


class InferenceError(MctopError):
    """MCTOP-ALG could not infer a consistent topology.

    Raised when the component-uniformity invariants of Section 3.6 are
    violated (a level's components do not all contain the same number of
    sub-components, or a component would belong to two parents).
    """


class ValidationError(MctopError):
    """An inferred topology failed a structural validation check."""


class SerializationError(MctopError):
    """An MCTOP description file could not be parsed or written."""


class PlacementError(MctopError):
    """A thread-placement request could not be satisfied.

    For example asking for more threads than the processor has hardware
    contexts, or requesting the POWER policy on a machine without power
    measurements.
    """


class SimulationError(MctopError):
    """The discrete-event engine detected an inconsistent program."""


class ServiceError(MctopError):
    """An ``mctopd`` request failed.

    Carries the wire-protocol error ``code`` (``timeout``,
    ``backpressure``, ``invalid_params``, ...) so clients can react to
    individual failure modes programmatically.
    """

    def __init__(self, message: str, code: str = "internal"):
        super().__init__(message)
        self.code = code


class ProtocolError(ServiceError):
    """A malformed frame on the ``mctopd`` wire protocol."""

    def __init__(self, message: str):
        super().__init__(message, code="bad_request")

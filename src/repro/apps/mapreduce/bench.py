"""The Figure 10 / Figure 11 Metis experiments.

Replays each workload profile on the simulated machine under a thread
placement, with the phase structure of Metis: a map phase (input
streaming + per-record compute + allocator locking + synchronization
rounds), a shuffle along the cross-socket reduction tree, and a reduce
phase on the destination socket.  Both contenders pick their best
thread count, as the paper does ("we select the best-performance
number of threads for both versions of Metis").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mctop import Mctop
from repro.hardware.machine import Machine
from repro.apps.locks.algorithms import TtasLock
from repro.apps.mapreduce.workloads import ALL_PROFILES, WorkloadProfile
from repro.apps.sort.tree import build_reduction_tree
from repro.place import Placement, Policy
from repro.sim import (
    Acquire,
    Barrier,
    BarrierWait,
    Communicate,
    Compute,
    Engine,
    MemStream,
    Release,
)

_ALLOC_CS_CYCLES = 180.0  # critical section inside the allocator
_ALLOC_WORK_CYCLES = 400.0  # mapper work between allocations
_SYNC_BATCH = 4  # sync rounds between barrier crossings
_SYNC_MASTER_CYCLES = 70.0  # master-side handling per worker message


@dataclass
class MetisRunResult:
    workload: str
    policy: Policy
    n_threads: int
    seconds: float
    energy_joules: float | None


def simulate_metis_run(
    machine: Machine,
    mctop: Mctop,
    profile: WorkloadProfile,
    policy: Policy | str,
    n_threads: int,
    track_energy: bool = False,
) -> MetisRunResult:
    """One Metis execution under one placement."""
    policy = Policy(policy) if isinstance(policy, str) else policy
    placement = Placement(mctop, policy, n_threads=n_threads)
    ctxs = placement.ordering
    master = ctxs[0]
    input_bytes = profile.input_mb * 1e6
    share = input_bytes / n_threads
    data_node = mctop.node_of_socket(mctop.socket_ids()[0])

    engine = Engine(machine, track_energy=track_energy)
    barrier = Barrier(n_threads)
    alloc_lock = TtasLock(seed=1)
    tree = build_reduction_tree(mctop)
    sockets = [mctop.socket_of_context(c) for c in ctxs]
    local_nodes = [mctop.get_local_node(c) for c in ctxs]

    # Default Metis allocates "locally" according to the *OS* node
    # mapping.  On a machine where the OS mapping is wrong (the paper's
    # Opteron, footnote 1) that memory actually lands on the wrong node
    # — one of the reasons default placement underperforms there.
    # MCTOP-placed Metis uses the measured (correct) mapping.
    if policy in (Policy.SEQUENTIAL, Policy.NONE):
        from repro.hardware.os_view import read_os_topology

        os_top = read_os_topology(machine)
        alloc_nodes = [os_top.node_of[c] for c in ctxs]
    else:
        alloc_nodes = local_nodes

    # Compute slows further when the SMT sibling shares the caches.
    used = set(ctxs)
    thrash = []
    for ctx in ctxs:
        core = mctop.core_of_context(ctx)
        siblings = set(mctop.core_get_contexts(core)) - {ctx}
        thrash.append(
            profile.smt_cache_thrash if siblings & used else 1.0
        )

    target_threads = [i for i, s in enumerate(sockets) if s == tree.target]
    shuffle_bytes = input_bytes * profile.shuffle_fraction
    alloc_bytes = share * profile.alloc_bytes_fraction

    def worker(i: int):
        # ---- Map phase: stream the split, process it, allocate, sync.
        yield MemStream(data_node, share)
        yield Compute(profile.map_compute_per_byte * share * thrash[i])
        if alloc_bytes:
            yield MemStream(alloc_nodes[i], alloc_bytes)
        for _ in range(profile.alloc_acquires_per_thread):
            yield Compute(_ALLOC_WORK_CYCLES)
            yield Acquire(alloc_lock)
            yield Compute(_ALLOC_CS_CYCLES)
            yield Release(alloc_lock)
        for r in range(profile.sync_rounds):
            if ctxs[i] != master:
                yield Communicate(master)
            else:
                # The master drains one message per worker, serially.
                yield Compute(_SYNC_MASTER_CYCLES * (n_threads - 1))
            if r % _SYNC_BATCH == 0:
                yield BarrierWait(barrier)
        yield BarrierWait(barrier)

        # ---- Shuffle: ship intermediate tables along the tree.
        for round_steps in tree.rounds:
            involved = {s for st in round_steps for s in (st.src, st.dst)}
            if sockets[i] in involved:
                per_thread = shuffle_bytes / max(
                    sum(1 for s in sockets if s in involved), 1
                )
                step = next(
                    st for st in round_steps if sockets[i] in (st.src, st.dst)
                )
                if sockets[i] == step.src:
                    dst_node = mctop.node_of_socket(step.dst)
                    yield MemStream(dst_node, per_thread)
                else:
                    yield MemStream(local_nodes[i], per_thread)
            yield BarrierWait(barrier)

        # ---- Reduce: the target socket's threads process the result.
        if i in target_threads:
            per_thread = shuffle_bytes / len(target_threads)
            yield MemStream(local_nodes[i], per_thread)
            yield Compute(profile.reduce_compute_per_byte * per_thread)

    for i, ctx in enumerate(ctxs):
        engine.spawn(ctx, worker(i))
    stats = engine.run()
    return MetisRunResult(
        workload=profile.name,
        policy=policy,
        n_threads=n_threads,
        seconds=stats.seconds,
        energy_joules=stats.energy_joules,
    )


def thread_grid(mctop: Mctop, prefers_unique_cores: bool) -> list[int]:
    """Candidate thread counts for the "best #threads" selection."""
    cores = mctop.n_cores
    contexts = mctop.n_contexts
    grid = {max(2, cores // 2), cores, contexts}
    if not prefers_unique_cores:
        grid.add(max(2, contexts // 2))
    return sorted(grid)


def best_run(
    machine: Machine,
    mctop: Mctop,
    profile: WorkloadProfile,
    policy: Policy,
    track_energy: bool = False,
    objective: str = "time",
) -> MetisRunResult:
    """The best thread count for one (workload, policy).

    ``objective`` is "time" for the performance-oriented runs of
    Figure 10 and "energy" for the energy-oriented placement of
    Figure 11 (which deliberately trades time for Joules).
    """
    runs = [
        simulate_metis_run(machine, mctop, profile, policy, n, track_energy)
        for n in thread_grid(mctop, profile.prefers_unique_cores)
    ]
    if objective == "energy":
        return min(runs, key=lambda r: r.energy_joules)
    # Near-ties go to the smaller thread count: nobody doubles the
    # thread count for a <1% win, and this is what keeps MCTOP-Metis at
    # "fewer or as many threads as the default" (Section 7.3).
    best_time = min(r.seconds for r in runs)
    eligible = [r for r in runs if r.seconds <= best_time * 1.01]
    return min(eligible, key=lambda r: r.n_threads)


@dataclass
class Figure10Cell:
    platform: str
    workload: str
    policy: Policy
    default_seconds: float
    mctop_seconds: float
    default_threads: int
    mctop_threads: int
    default_energy: float | None = None
    mctop_energy: float | None = None

    @property
    def relative_time(self) -> float:
        return self.mctop_seconds / self.default_seconds

    @property
    def relative_energy(self) -> float | None:
        if self.default_energy and self.mctop_energy:
            return self.mctop_energy / self.default_energy
        return None


@dataclass
class Figure10Result:
    cells: list[Figure10Cell] = field(default_factory=list)

    def average_relative_time(self) -> float:
        return sum(c.relative_time for c in self.cells) / len(self.cells)

    def average_relative_energy(self) -> float | None:
        values = [
            c.relative_energy for c in self.cells
            if c.relative_energy is not None
        ]
        return sum(values) / len(values) if values else None

    def table(self) -> str:
        lines = [
            f"{'platform':<10} {'workload':<12} {'policy':<14} "
            f"{'rel time':>8} {'rel energy':>10} {'threads':>9}"
        ]
        for c in self.cells:
            energy = (
                f"{c.relative_energy:>10.2f}"
                if c.relative_energy is not None
                else f"{'-':>10}"
            )
            lines.append(
                f"{c.platform:<10} {c.workload:<12} {c.policy.value:<14} "
                f"{c.relative_time:>8.2f} {energy} "
                f"{c.mctop_threads:>4}/{c.default_threads:<4}"
            )
        return "\n".join(lines)


def run_figure10(
    machine: Machine,
    mctop: Mctop,
    profiles: tuple[WorkloadProfile, ...] = ALL_PROFILES,
) -> Figure10Result:
    """MCTOP-placed Metis vs default (SEQUENTIAL) Metis, per workload."""
    track_energy = machine.spec.power is not None
    result = Figure10Result()
    for profile in profiles:
        default = best_run(
            machine, mctop, profile, Policy.SEQUENTIAL, track_energy
        )
        placed = best_run(
            machine, mctop, profile, profile.paper_policy, track_energy
        )
        result.cells.append(
            Figure10Cell(
                platform=machine.spec.name,
                workload=profile.name,
                policy=profile.paper_policy,
                default_seconds=default.seconds,
                mctop_seconds=placed.seconds,
                default_threads=default.n_threads,
                mctop_threads=placed.n_threads,
                default_energy=default.energy_joules,
                mctop_energy=placed.energy_joules,
            )
        )
    return result


@dataclass
class Figure11Row:
    workload: str
    relative_time: float
    relative_energy: float

    @property
    def relative_energy_efficiency(self) -> float:
        """Work per joule per second, relative (see the paper's 1.089)."""
        return 1.0 / (self.relative_time * self.relative_energy)


def run_figure11(
    machine: Machine,
    mctop: Mctop,
    profiles: tuple[WorkloadProfile, ...],
) -> list[Figure11Row]:
    """Energy-oriented (POWER) vs performance-oriented placement."""
    rows = []
    for profile in profiles:
        perf = best_run(machine, mctop, profile, profile.paper_policy, True)
        power = best_run(
            machine, mctop, profile, Policy.POWER, True, objective="energy"
        )
        rows.append(
            Figure11Row(
                workload=profile.name,
                relative_time=power.seconds / perf.seconds,
                relative_energy=power.energy_joules / perf.energy_joules,
            )
        )
    return rows

"""A Metis-style MapReduce engine.

Metis [Mao et al.] is a single-machine MapReduce library for
multi-cores: input splits are mapped in parallel into per-worker hash
tables, which are then merged and reduced.  This module provides the
*functional* engine — real map/reduce over real data, used by the
examples and correctness tests.  The placement-sensitive *performance*
model of the Figure 10 experiment lives in :mod:`bench`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.mctop import Mctop
from repro.place import Placement, Policy

MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
ReduceFn = Callable[[Any, list[Any]], Any]


@dataclass
class MapReduceJob:
    """A job description: how to map records and reduce value lists."""

    map_fn: MapFn
    reduce_fn: ReduceFn
    name: str = "job"


class MetisEngine:
    """Run MapReduce jobs with MCTOP-PLACE thread placement.

    The engine is deterministic: worker w processes splits
    ``w, w + n_workers, w + 2*n_workers, ...`` and per-worker tables are
    merged in worker order.  Placement does not change the *result*
    (tested), only the performance model's cost.
    """

    def __init__(
        self,
        mctop: Mctop,
        policy: Policy | str = Policy.SEQUENTIAL,
        n_workers: int | None = None,
    ):
        self.mctop = mctop
        requested = n_workers or mctop.n_contexts
        self.placement = Placement(mctop, policy, n_threads=requested)
        self.n_workers = self.placement.n_threads

    def run(self, job: MapReduceJob, records: list[Any]) -> dict[Any, Any]:
        """Execute the job over the records; returns key -> reduced value."""
        # Map phase: one intermediate table per worker.
        tables: list[dict[Any, list[Any]]] = [
            defaultdict(list) for _ in range(self.n_workers)
        ]
        for w in range(self.n_workers):
            for split in records[w::self.n_workers]:
                for key, value in job.map_fn(split):
                    tables[w][key].append(value)

        # Merge phase: combine per-worker tables (worker order).
        merged: dict[Any, list[Any]] = defaultdict(list)
        for table in tables:
            for key, values in table.items():
                merged[key].extend(values)

        # Reduce phase.
        return {key: job.reduce_fn(key, values) for key, values in merged.items()}

"""The four Metis workloads of Figure 10.

Each workload has two faces:

* a *functional* job (real map/reduce functions plus a data generator)
  used for correctness tests and the examples;
* a :class:`WorkloadProfile` describing its resource demands, which the
  Figure 10 performance model replays on the simulated machine.

The profiles encode what the paper observes: K-Means and Matrix
Multiply are compute-bound (SMT sharing hurts, unique cores win); Mean
streams its input (bandwidth-bound, but the input lives on one node, so
spreading buys little and costs synchronization); Word Count hammers
the allocator and synchronizes constantly (placement-latency bound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.mapreduce.engine import MapReduceJob
from repro.place import Policy


@dataclass(frozen=True)
class WorkloadProfile:
    """Resource profile replayed by the Figure 10 cost model."""

    name: str
    paper_policy: Policy  # the policy Figure 10 runs it with
    input_mb: float
    map_compute_per_byte: float  # cycles / input byte
    shuffle_fraction: float  # intermediate bytes / input bytes
    reduce_compute_per_byte: float  # cycles / intermediate byte
    sync_rounds: int  # barrier + master round-trips during map
    alloc_acquires_per_thread: int  # global-allocator lock acquisitions
    prefers_unique_cores: bool  # true for flop-heavy kernels
    #: bytes written to the worker's local node per input byte (the
    #: allocation traffic of building intermediate structures)
    alloc_bytes_fraction: float = 0.1
    #: extra compute factor when an SMT sibling shares the core's
    #: caches (beyond the engine's pipeline-sharing slowdown)
    smt_cache_thrash: float = 1.0


# ----------------------------------------------------------- Word Count
def word_count_job() -> MapReduceJob:
    def map_fn(line: str):
        for word in line.split():
            yield word.lower(), 1

    def reduce_fn(word, counts):
        return sum(counts)

    return MapReduceJob(map_fn, reduce_fn, name="word-count")


def word_count_data(n_lines: int = 200, seed: int = 0) -> list[str]:
    rng = np.random.default_rng(seed)
    vocabulary = ["the", "quick", "brown", "fox", "jumps", "over", "lazy",
                  "dog", "lorem", "ipsum", "dolor", "sit", "amet"]
    return [
        " ".join(rng.choice(vocabulary, size=rng.integers(3, 12)))
        for _ in range(n_lines)
    ]


WORD_COUNT = WorkloadProfile(
    name="word-count",
    paper_policy=Policy.RR_HWC,
    input_mb=1024.0,
    map_compute_per_byte=2.0,
    shuffle_fraction=0.5,
    reduce_compute_per_byte=2.0,
    sync_rounds=220,  # heavy synchronization (paper, Section 7.3)
    alloc_acquires_per_thread=320,  # heavy memory allocation
    prefers_unique_cores=False,
    alloc_bytes_fraction=3.5,  # intermediate tables dwarf the input
    smt_cache_thrash=1.1,
)


# -------------------------------------------------------------- K-Means
def kmeans_job(centroids: np.ndarray) -> MapReduceJob:
    def map_fn(point: np.ndarray):
        distances = np.linalg.norm(centroids - point, axis=1)
        yield int(np.argmin(distances)), point

    def reduce_fn(cluster, points):
        return np.mean(points, axis=0)

    return MapReduceJob(map_fn, reduce_fn, name="k-means")


def kmeans_data(n_points: int = 300, dims: int = 3, k: int = 4,
                seed: int = 0) -> tuple[list[np.ndarray], np.ndarray]:
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 10, size=(k, dims))
    points = [
        centers[rng.integers(k)] + rng.normal(0, 1, dims)
        for _ in range(n_points)
    ]
    return points, rng.normal(0, 10, size=(k, dims))


KMEANS = WorkloadProfile(
    name="k-means",
    paper_policy=Policy.CON_CORE_HWC,
    input_mb=768.0,
    map_compute_per_byte=14.0,  # distance computation per point
    shuffle_fraction=0.08,
    reduce_compute_per_byte=3.0,
    sync_rounds=80,  # per-iteration barriers
    alloc_acquires_per_thread=8,
    prefers_unique_cores=True,
    alloc_bytes_fraction=0.6,  # cluster-assignment writes
    smt_cache_thrash=1.15,  # the distance kernel mostly fits the caches
)


# ----------------------------------------------------------------- Mean
def mean_job() -> MapReduceJob:
    def map_fn(chunk: np.ndarray):
        yield "sum", float(np.sum(chunk))
        yield "count", int(chunk.size)

    def reduce_fn(key, values):
        return sum(values)

    return MapReduceJob(map_fn, reduce_fn, name="mean")


def mean_data(n_chunks: int = 64, chunk: int = 256, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return [rng.normal(50, 10, chunk) for _ in range(n_chunks)]


MEAN = WorkloadProfile(
    name="mean",
    paper_policy=Policy.CON_HWC,
    input_mb=2048.0,
    map_compute_per_byte=0.8,  # a single add per element: pure streaming
    shuffle_fraction=0.001,
    reduce_compute_per_byte=1.0,
    sync_rounds=18,
    alloc_acquires_per_thread=4,
    prefers_unique_cores=False,
    alloc_bytes_fraction=0.02,
    smt_cache_thrash=1.0,  # streaming: nothing cache-resident to thrash
)


# -------------------------------------------------------- Matrix Multiply
def matrix_mult_job(a: np.ndarray, b: np.ndarray) -> MapReduceJob:
    def map_fn(row_index: int):
        yield row_index, a[row_index] @ b

    def reduce_fn(row_index, rows):
        return rows[0]

    return MapReduceJob(map_fn, reduce_fn, name="matrix-mult")


def matrix_mult_data(n: int = 24, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))
    return list(range(n)), a, b


MATRIX_MULT = WorkloadProfile(
    name="matrix-mult",
    paper_policy=Policy.CON_CORE,
    input_mb=512.0,
    map_compute_per_byte=26.0,  # O(n) flops per input byte
    shuffle_fraction=0.25,
    reduce_compute_per_byte=0.5,
    sync_rounds=12,
    alloc_acquires_per_thread=6,
    prefers_unique_cores=True,
    alloc_bytes_fraction=0.25,
    smt_cache_thrash=1.3,  # row blocks are evicted by the sibling
)


ALL_PROFILES: tuple[WorkloadProfile, ...] = (
    KMEANS, MEAN, WORD_COUNT, MATRIX_MULT
)


def profile_by_name(name: str) -> WorkloadProfile:
    for p in ALL_PROFILES:
        if p.name == name:
            return p
    raise KeyError(name)

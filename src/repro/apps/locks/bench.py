"""The lock-contention experiment of Figure 8.

Multiple threads compete for one lock, spend 1000 cycles in the
critical section, release, and pause briefly before retrying (avoiding
long runs, as in the paper).  The harness reports throughput (critical
sections per second) for each algorithm with and without the
MCTOP-educated backoff, across a sweep of thread counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mctop import Mctop
from repro.hardware.machine import Machine
from repro.apps.locks.algorithms import ALGORITHMS, SpinLock
from repro.apps.locks.backoff import BackoffPolicy, educated_backoff, pause_baseline
from repro.place import Placement, Policy
from repro.sim import Acquire, Compute, Engine, Release


@dataclass(frozen=True)
class LockExperimentConfig:
    cs_cycles: float = 1000.0  # critical-section work (the paper's value)
    pause_cycles: float = 200.0  # think time between iterations
    iterations: int = 120  # critical sections per thread
    placement_policy: Policy = Policy.SEQUENTIAL  # OS-like spread


@dataclass
class LockRunResult:
    algorithm: str
    backoff: str
    n_threads: int
    throughput: float  # critical sections / second
    total_acquisitions: int = 0
    cycles: float = 0.0


def _worker(lock: SpinLock, cfg: LockExperimentConfig):
    for _ in range(cfg.iterations):
        yield Acquire(lock)
        yield Compute(cfg.cs_cycles)
        yield Release(lock)
        yield Compute(cfg.pause_cycles)


def run_lock_experiment(
    machine: Machine,
    mctop: Mctop,
    algorithm: str,
    n_threads: int,
    use_backoff: bool,
    cfg: LockExperimentConfig | None = None,
    seed: int = 0,
) -> LockRunResult:
    """One cell of Figure 8: an (algorithm, backoff, threads) triple."""
    cfg = cfg or LockExperimentConfig()
    placement = Placement(mctop, cfg.placement_policy, n_threads=n_threads)
    ctxs = placement.ordering

    policy: BackoffPolicy = (
        educated_backoff(mctop, ctxs) if use_backoff else pause_baseline()
    )
    lock = ALGORITHMS[algorithm](backoff=policy, seed=seed)

    engine = Engine(machine)
    for ctx in ctxs:
        engine.spawn(ctx, _worker(lock, cfg))
    stats = engine.run()
    total = n_threads * cfg.iterations
    return LockRunResult(
        algorithm=algorithm,
        backoff=policy.name,
        n_threads=n_threads,
        throughput=total / stats.seconds,
        total_acquisitions=lock.acquisitions,
        cycles=stats.cycles,
    )


@dataclass
class Figure8Row:
    """Relative throughput of one (platform, algorithm, threads) cell."""

    platform: str
    algorithm: str
    n_threads: int
    baseline_throughput: float
    backoff_throughput: float

    @property
    def relative(self) -> float:
        return self.backoff_throughput / self.baseline_throughput


@dataclass
class Figure8Result:
    rows: list[Figure8Row] = field(default_factory=list)

    def average_gain(self, algorithm: str) -> float:
        rel = [r.relative for r in self.rows if r.algorithm == algorithm]
        return sum(rel) / len(rel) - 1.0 if rel else 0.0

    def table(self) -> str:
        lines = [
            f"{'platform':<10} {'algo':<7} {'threads':>7} "
            f"{'base MCS/s':>11} {'mctop MCS/s':>11} {'relative':>9}"
        ]
        for r in self.rows:
            lines.append(
                f"{r.platform:<10} {r.algorithm:<7} {r.n_threads:>7} "
                f"{r.baseline_throughput / 1e6:>11.3f} "
                f"{r.backoff_throughput / 1e6:>11.3f} "
                f"{r.relative:>9.2f}"
            )
        return "\n".join(lines)


def thread_sweep(machine: Machine) -> list[int]:
    """Thread counts for a platform, like the x axes of Figure 8."""
    n = machine.spec.n_contexts
    points = [2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 256]
    return [p for p in points if p <= n]


def run_figure8(
    machine: Machine,
    mctop: Mctop,
    algorithms: tuple[str, ...] = ("TAS", "TTAS", "TICKET"),
    thread_counts: list[int] | None = None,
    cfg: LockExperimentConfig | None = None,
    seed: int = 0,
) -> Figure8Result:
    """The full Figure 8 sweep for one platform."""
    counts = thread_counts if thread_counts is not None else thread_sweep(machine)
    result = Figure8Result()
    for algorithm in algorithms:
        for n in counts:
            base = run_lock_experiment(
                machine, mctop, algorithm, n, use_backoff=False,
                cfg=cfg, seed=seed,
            )
            with_bo = run_lock_experiment(
                machine, mctop, algorithm, n, use_backoff=True,
                cfg=cfg, seed=seed,
            )
            result.rows.append(
                Figure8Row(
                    platform=machine.spec.name,
                    algorithm=algorithm,
                    n_threads=n,
                    baseline_throughput=base.throughput,
                    backoff_throughput=with_bo.throughput,
                )
            )
    return result

"""Spinlock algorithms: TAS, TTAS and TICKET (Section 7.1).

Each lock plugs into the simulation engine through the ``Acquire`` /
``Release`` commands and models the *handover* cost of the algorithm —
the time between a release and the next owner entering its critical
section.  The handover models capture the coherence behaviour the paper
exploits:

* all algorithms pay the coherence latency ``L`` between releaser and
  next owner (the lock word must travel between their caches);
* **without backoff**, spinning waiters keep re-requesting the line, so
  the handover also pays an invalidation storm that grows with the
  number of waiters — worst for TICKET, where every waiter spins on the
  single ``now_serving`` word, milder for TTAS (local spinning, storm
  only at the release instant) and TAS;
* **with backoff**, waiters sleep between probes: the storm term is
  suppressed (entirely for TICKET's proportional backoff — a waiter
  knows its queue position and wakes close to its turn) at the price of
  an expected half-quantum of wake-up delay.

TAS and TTAS hand the lock to a *random* waiter (whoever's CAS wins);
TICKET is FIFO.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.apps.locks.backoff import BackoffPolicy, pause_baseline
from repro.sim.engine import Engine, SimThread


class SpinLock:
    """Base class: queueing semantics + the per-algorithm cost model."""

    #: invalidation-storm cost per waiter, in units of L (no backoff)
    storm_per_waiter: float = 0.04
    #: waiters beyond this stop adding storm (the line is saturated)
    storm_cap: int = 48
    #: fraction of the storm that survives *with* backoff
    storm_residual: float = 0.2
    #: expected fraction of the quantum spent oversleeping a handover
    oversleep: float = 0.20
    #: uncontended poll overshoot of the spinning baseline, in units of L
    base_overshoot: float = 0.20

    def __init__(self, backoff: BackoffPolicy | None = None, seed: int = 0):
        self.backoff = backoff or pause_baseline()
        self._rng = np.random.default_rng(seed)
        self._owner: SimThread | None = None
        self._waiters: list[SimThread] = []
        self._last_release_ctx: int | None = None
        self.acquisitions = 0

    # --------------------------------------------------------- sim hooks
    def _request(self, engine: Engine, thread: SimThread) -> None:
        if self._owner is None:
            self._grant(engine, thread, handover_from=self._last_release_ctx)
        else:
            self._waiters.append(thread)
            engine.block(thread)

    def _release(self, engine: Engine, thread: SimThread) -> None:
        if self._owner is not thread:
            raise SimulationError(
                f"{thread.name} released a lock it does not hold"
            )
        self._owner = None
        self._last_release_ctx = thread.ctx
        # The releasing store itself is quick; the releaser continues.
        engine.wake(thread, engine.now)
        if self._waiters:
            nxt = self._pick_next()
            self._grant(engine, nxt, handover_from=thread.ctx,
                        waiters_at_release=len(self._waiters) + 1)

    # ------------------------------------------------------- cost model
    def _grant(self, engine: Engine, thread: SimThread,
               handover_from: int | None,
               waiters_at_release: int = 1) -> None:
        self._owner = thread
        self.acquisitions += 1
        delay = self._handover_delay(
            engine, thread, handover_from, waiters_at_release
        )
        engine.wake(thread, engine.now + delay)

    def _handover_delay(self, engine: Engine, thread: SimThread,
                        from_ctx: int | None, waiters: int) -> float:
        if from_ctx is None:
            # First acquisition ever: fetch the line from memory.
            socket = engine.machine.socket_of(thread.ctx)
            return float(engine.machine.mem_latency(
                socket, engine.machine.local_node_of_socket(socket)
            ))
        lat = float(engine.machine.comm_latency(thread.ctx, from_ctx))
        if lat == 0.0:  # same context re-acquiring
            lat = float(engine.machine.spec.caches[0].latency)
        storm_waiters = min(waiters - 1, self.storm_cap)
        storm = lat * self.storm_per_waiter * storm_waiters
        if not self.backoff.enabled:
            # Spinning baseline: full storm plus the poll overshoot of
            # the winner's last probe round-trip.
            return lat * (1.0 + self.base_overshoot) + storm
        quantum = self.backoff.quantum
        oversleep = quantum * self.oversleep * (
            0.9 + 0.2 * self._rng.random()
        )
        # Backed-off waiters still probe between sleeps.  How much of
        # the storm survives depends on the poll frequency: a quantum
        # much smaller than the coherence latency polls almost as often
        # as spinning (suppression -> 1), while a generous quantum
        # approaches the algorithm's floor (``storm_residual``).  This
        # is why the *size* of the quantum — MCTOP's max-latency value —
        # matters, not just having one.  For TTAS the floor itself is
        # high, which is why its gains vanish under heavy contention.
        suppression = lat / (lat + 4.0 * quantum)
        residual_frac = (
            self.storm_residual + (1.0 - self.storm_residual) * suppression
        )
        residual = min(
            lat * self.storm_per_waiter * residual_frac * (waiters - 1),
            storm,
        )
        return lat + residual + oversleep

    def _pick_next(self) -> SimThread:
        raise NotImplementedError


class TasLock(SpinLock):
    """test-and-set: every probe is a write (RFO), heavy line bouncing.

    The winner of the next acquisition is whichever waiter's atomic
    lands first — effectively random.
    """

    name = "TAS"
    storm_per_waiter = 0.060
    storm_residual = 0.18
    oversleep = 0.20

    def _pick_next(self) -> SimThread:
        idx = int(self._rng.integers(len(self._waiters)))
        return self._waiters.pop(idx)


class TtasLock(SpinLock):
    """test-and-test-and-set: waiters spin on local (shared) copies and
    only attempt the atomic when the lock looks free.  Lighter traffic
    while held, but the release still triggers a CAS stampede — and
    that stampede happens with or without backoff, which is why the
    paper sees TTAS backoff gains vanish under high contention.
    """

    name = "TTAS"
    storm_per_waiter = 0.20
    storm_cap = 14  # local spinning bounds the stampede
    storm_residual = 0.40
    oversleep = 0.20

    def _pick_next(self) -> SimThread:
        idx = int(self._rng.integers(len(self._waiters)))
        return self._waiters.pop(idx)


class TicketLock(SpinLock):
    """FIFO ticket lock: all waiters spin on one ``now_serving`` word.

    Without backoff every handover invalidates *every* waiter's copy —
    the worst storm of the three.  With the MCTOP proportional backoff
    each waiter sleeps ``position x quantum``, polls approximately once
    per handover, and the storm disappears — hence the paper's largest
    gains (39% on average).
    """

    name = "TICKET"
    storm_per_waiter = 0.11
    storm_residual = 0.0
    oversleep = 0.15  # position-proportional sleep wakes close to the turn

    def _pick_next(self) -> SimThread:
        return self._waiters.pop(0)


ALGORITHMS: dict[str, type[SpinLock]] = {
    "TAS": TasLock,
    "TTAS": TtasLock,
    "TICKET": TicketLock,
}

"""Lock algorithms with MCTOP-educated backoffs (Section 7.1)."""

from repro.apps.locks.algorithms import (
    ALGORITHMS,
    SpinLock,
    TasLock,
    TicketLock,
    TtasLock,
)
from repro.apps.locks.backoff import (
    BackoffPolicy,
    educated_backoff,
    fixed_backoff,
    pause_baseline,
)
from repro.apps.locks.bench import (
    Figure8Result,
    Figure8Row,
    LockExperimentConfig,
    LockRunResult,
    run_figure8,
    run_lock_experiment,
    thread_sweep,
)

__all__ = [
    "ALGORITHMS",
    "BackoffPolicy",
    "Figure8Result",
    "Figure8Row",
    "LockExperimentConfig",
    "LockRunResult",
    "SpinLock",
    "TasLock",
    "TicketLock",
    "TtasLock",
    "educated_backoff",
    "fixed_backoff",
    "pause_baseline",
    "run_figure8",
    "run_lock_experiment",
    "thread_sweep",
]

"""Backoff policies for spinlocks (Section 5, "Educated Backoffs").

The paper's insight: coherence "messages" travel exactly as fast as the
coherence protocol, so the natural backoff quantum is the maximum
communication latency between any two threads of the execution — a
number MCTOP provides portably on every machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mctop import Mctop


@dataclass(frozen=True)
class BackoffPolicy:
    """A backoff scheme with its quantum in cycles.

    ``quantum == 0`` means no backoff (the ``pause``-instruction
    baseline of the paper's Figure 8).
    """

    name: str
    quantum: float

    @property
    def enabled(self) -> bool:
        return self.quantum > 0


def pause_baseline() -> BackoffPolicy:
    """Busy-wait with the architectural pause instruction only."""
    return BackoffPolicy("pause", 0.0)


def educated_backoff(mctop: Mctop, ctxs: list[int]) -> BackoffPolicy:
    """The MCTOP policy: quantum = max latency among the thread set."""
    return BackoffPolicy("mctop", float(mctop.max_latency(ctxs)))


def fixed_backoff(cycles: float) -> BackoffPolicy:
    """A hand-tuned constant quantum (for the ablation study)."""
    return BackoffPolicy(f"fixed-{cycles:.0f}", float(cycles))

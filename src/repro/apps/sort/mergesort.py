"""Functional parallel mergesort implementations.

Three algorithms, mirroring Figure 9's contenders:

* :func:`gnu_parallel_sort` — the topology-agnostic baseline: split
  into chunks, sort each, merge pairwise in index order (what
  ``__gnu_parallel::sort``'s final merge amounts to);
* :func:`mctop_sort` — same first step, but the merge follows the
  topology-aware reduction tree (chunks are grouped by socket, merged
  within sockets first, then across sockets along the tree);
* :func:`mctop_sort_sse` — ``mctop_sort`` with the SIMD bitonic merge
  kernel.

These run on real arrays and are checked for correctness; the *timing*
of the 1 GB experiment comes from the cost model in ``bench.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.mctop import Mctop
from repro.apps.sort.merge import merge_scalar, merge_simd
from repro.apps.sort.tree import build_reduction_tree
from repro.place import Placement, Policy


def _split_chunks(data: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    return [np.sort(c) for c in np.array_split(data, n_chunks)]


def _merge_list(chunks: list[np.ndarray], merge) -> np.ndarray:
    """Pairwise merge until a single run remains."""
    runs = list(chunks)
    while len(runs) > 1:
        nxt = []
        for i in range(0, len(runs) - 1, 2):
            nxt.append(merge(runs[i], runs[i + 1]))
        if len(runs) % 2:
            nxt.append(runs[-1])
        runs = nxt
    return runs[0] if runs else np.array([])


def gnu_parallel_sort(data: np.ndarray, n_threads: int) -> np.ndarray:
    """The topology-agnostic baseline."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    return _merge_list(_split_chunks(data, n_threads), merge_scalar)


def mctop_sort(
    data: np.ndarray,
    mctop: Mctop,
    n_threads: int,
    use_simd: bool = False,
) -> np.ndarray:
    """Topology-aware mergesort (Section 7.2).

    Chunks are assigned to threads placed with the RR policy (spreading
    across sockets to use every LLC); each socket's chunks are merged
    locally, then socket results are merged along the bandwidth-
    maximizing reduction tree, finishing on the tree's target socket.
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    merge = merge_simd if use_simd else merge_scalar
    # Like any parallel sort, cap the team at the hardware's capacity.
    n_threads = min(n_threads, mctop.n_contexts)
    placement = Placement(mctop, Policy.RR_CORE, n_threads=n_threads)
    chunks = _split_chunks(data, n_threads)

    # Group the sorted chunks by the socket of their owning thread.
    by_socket: dict[int, list[np.ndarray]] = {}
    for ctx, chunk in zip(placement.ordering, chunks):
        by_socket.setdefault(mctop.socket_of_context(ctx), []).append(chunk)

    # Intra-socket reduction: all threads of a socket cooperate.
    socket_runs = {s: _merge_list(c, merge) for s, c in by_socket.items()}

    # Cross-socket reduction along the bandwidth tree.
    tree = build_reduction_tree(mctop)
    for round_steps in tree.rounds:
        for step in round_steps:
            if step.src in socket_runs and step.dst in socket_runs:
                socket_runs[step.dst] = merge(
                    socket_runs.pop(step.src), socket_runs[step.dst]
                )
    remaining = list(socket_runs.values())
    return _merge_list(remaining, merge)


def mctop_sort_sse(data: np.ndarray, mctop: Mctop, n_threads: int) -> np.ndarray:
    """``mctop_sort`` with the SIMD bitonic merge kernel."""
    return mctop_sort(data, mctop, n_threads, use_simd=True)

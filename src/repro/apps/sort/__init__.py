"""Topology-aware parallel mergesort (Section 7.2)."""

from repro.apps.sort.bench import (
    Figure9Result,
    SortBreakdown,
    SortCostConfig,
    run_figure9,
    simulate_sort_run,
)
from repro.apps.sort.merge import (
    SIMD_WIDTH,
    bitonic_merge8,
    merge_scalar,
    merge_simd,
)
from repro.apps.sort.mergesort import gnu_parallel_sort, mctop_sort, mctop_sort_sse
from repro.apps.sort.tree import MergeStep, ReductionTree, build_reduction_tree

__all__ = [
    "Figure9Result",
    "MergeStep",
    "ReductionTree",
    "SIMD_WIDTH",
    "SortBreakdown",
    "SortCostConfig",
    "bitonic_merge8",
    "build_reduction_tree",
    "gnu_parallel_sort",
    "mctop_sort",
    "mctop_sort_sse",
    "merge_scalar",
    "merge_simd",
    "run_figure9",
    "simulate_sort_run",
]

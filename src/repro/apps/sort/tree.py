"""Topology-aware cross-socket reduction trees (Section 5).

Builds the binary merge tree of ``mctop_sort``: at every level the
sockets are paired so that the pair bandwidths are maximized, and the
final destination is the socket that needs the result (socket 0 in the
paper's sort experiment).  The same tree shape serves any fork-join
reduction (the MapReduce engine reuses it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mctop import Mctop


@dataclass(frozen=True)
class MergeStep:
    """One transfer: ``src`` socket sends its data to ``dst``."""

    src: int
    dst: int
    bandwidth: float | None  # link bandwidth, if measured


@dataclass
class ReductionTree:
    """Rounds of pairwise merges, last round ending at the target."""

    target: int
    rounds: list[list[MergeStep]]

    @property
    def depth(self) -> int:
        return len(self.rounds)

    def all_steps(self) -> list[MergeStep]:
        return [s for r in self.rounds for s in r]


def _pair_bandwidth(mctop: Mctop, a: int, b: int) -> float:
    link = mctop.links.get((min(a, b), max(a, b)))
    if link is not None and link.bandwidth is not None:
        return link.bandwidth
    # Fall back on inverse latency when bandwidth was not measured.
    return 1e6 / max(mctop.socket_latency(a, b), 1)


def build_reduction_tree(mctop: Mctop, target_socket: int | None = None) -> ReductionTree:
    """Greedy maximum-bandwidth pairing, level by level.

    Each round pairs up the surviving sockets (greedily taking the
    highest-bandwidth pair first); the member of a pair that keeps the
    data is the one on the (bandwidth-weighted) path to the target —
    the target socket itself always receives.
    """
    if target_socket is None:
        target_socket = mctop.socket_ids()[0]
    alive = mctop.socket_ids()
    if target_socket not in alive:
        raise ValueError(f"unknown target socket {target_socket}")
    rounds: list[list[MergeStep]] = []
    while len(alive) > 1:
        pairs: list[tuple[float, int, int]] = []
        for i, a in enumerate(alive):
            for b in alive[i + 1:]:
                pairs.append((_pair_bandwidth(mctop, a, b), a, b))
        pairs.sort(reverse=True)
        used: set[int] = set()
        steps: list[MergeStep] = []
        for bw, a, b in pairs:
            if a in used or b in used:
                continue
            used.add(a)
            used.add(b)
            dst, src = (a, b) if a == target_socket else (
                (b, a) if b == target_socket else
                ((a, b) if _pair_bandwidth(mctop, a, target_socket)
                 >= _pair_bandwidth(mctop, b, target_socket) else (b, a))
            )
            link = mctop.links.get((min(a, b), max(a, b)))
            steps.append(
                MergeStep(src=src, dst=dst,
                          bandwidth=link.bandwidth if link else None)
            )
        # An odd socket out simply survives to the next round.
        rounds.append(steps)
        alive = sorted(
            {s.dst for s in steps} | {a for a in alive if a not in used}
        )
    return ReductionTree(target=target_socket, rounds=rounds)

"""The Figure 9 experiment: sorting 1 GB of integers.

The functional algorithms in ``mergesort.py`` prove correctness on real
arrays; sorting 268M integers in pure Python is not meaningful to
*time*, so the experiment replays each algorithm's execution plan —
which thread computes what, and which memory channels its data crosses
— on the discrete-event engine.  The breakdown matches the paper's
stacked bars: a sequential (chunk-sort) part and a merging part.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.mctop import Mctop
from repro.hardware.machine import Machine
from repro.apps.sort.tree import build_reduction_tree
from repro.place import Placement, Policy
from repro.sim import Barrier, BarrierWait, Compute, Engine, MemStream


@dataclass(frozen=True)
class SortCostConfig:
    n_elements: int = 268_435_456  # 1 GB of 4-byte integers
    element_bytes: int = 4
    sort_cycles_per_element_level: float = 9.0  # sequential quicksort
    merge_scalar_cycles: float = 12.0
    merge_simd_cycles: float = 4.5
    simd_data_share: float = 3.0  # SIMD threads take 3x the data
    #: extra per-element merge cost of the topology-agnostic baseline:
    #: gnu merges through one socket's LLC and memory controller, while
    #: mctop_sort spreads runs across every socket's LLC (Section 7.2)
    agnostic_cache_penalty: float = 1.5


@dataclass
class SortBreakdown:
    """One bar of Figure 9."""

    platform: str
    variant: str  # "gnu" | "mctop" | "mctop_sse"
    n_threads: int
    sequential_seconds: float
    merge_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.sequential_seconds + self.merge_seconds


@dataclass(frozen=True)
class _Phase:
    compute: float = 0.0
    streams: tuple[tuple[int, float], ...] = ()  # (node, bytes)


def _merge_cost(cfg: SortCostConfig, simd: bool) -> float:
    return cfg.merge_simd_cycles if simd else cfg.merge_scalar_cycles


def _build_plans(
    mctop: Mctop,
    variant: str,
    n_threads: int,
    cfg: SortCostConfig,
) -> tuple[list[int], list[list[_Phase]]]:
    """Per-thread phase lists (all threads have the same phase count)."""
    if variant == "gnu":
        # gnu_parallel does not pin; the OS scheduler load-balances
        # threads across cores and sockets (without any topology goal).
        placement = Placement(mctop, Policy.BALANCE_CORE, n_threads=n_threads)
    else:
        placement = Placement(mctop, Policy.RR_CORE, n_threads=n_threads)
    ctxs = placement.ordering
    data_node = mctop.node_of_socket(mctop.socket_ids()[0])
    sockets = [mctop.socket_of_context(c) for c in ctxs]
    local_nodes = [mctop.get_local_node(c) for c in ctxs]
    ebytes = cfg.element_bytes
    n = cfg.n_elements

    # Data shares: SIMD threads (first context of each core) take 3x.
    if variant == "mctop_sse" and mctop.has_smt:
        weights = [
            cfg.simd_data_share
            if mctop.contexts[c].smt_index == 0
            else 1.0
            for c in ctxs
        ]
        simd_flags = [mctop.contexts[c].smt_index == 0 for c in ctxs]
    else:
        weights = [1.0] * n_threads
        simd_flags = [variant == "mctop_sse"] * n_threads
    wsum = sum(weights)
    merge_share = [n * w / wsum for w in weights]
    chunk = n / n_threads  # sequential part is identical across variants

    plans: list[list[_Phase]] = [[] for _ in range(n_threads)]

    # ---- Phase 1: sequential chunk sort (plus data distribution).
    sort_cycles = cfg.sort_cycles_per_element_level * chunk * math.log2(max(chunk, 2))
    for i in range(n_threads):
        if variant == "gnu":
            streams = ((data_node, 2 * chunk * ebytes),)
        else:
            # Fetch from the source node once, work locally after.
            streams = (
                (data_node, chunk * ebytes),
                (local_nodes[i], chunk * ebytes),
            )
        plans[i].append(_Phase(compute=sort_cycles, streams=streams))

    # ---- Phase 2: merge rounds.
    per_socket: dict[int, int] = {}
    for s in sockets:
        per_socket[s] = per_socket.get(s, 0) + 1

    if variant == "gnu":
        # Topology-agnostic pairwise merging: every round touches all
        # data.  Half the traffic hits the source array on node 0, half
        # the first-touched intermediates near the threads — but with
        # no bandwidth-aware pairing and no LLC partitioning.
        rounds = math.ceil(math.log2(max(n_threads, 2)))
        for i in range(n_threads):
            cost = _merge_cost(cfg, simd_flags[i]) * cfg.agnostic_cache_penalty
            for _ in range(rounds):
                plans[i].append(
                    _Phase(
                        compute=cost * merge_share[i],
                        streams=(
                            (data_node, 0.5 * merge_share[i] * ebytes),
                            (local_nodes[i], 1.5 * merge_share[i] * ebytes),
                        ),
                    )
                )
        return ctxs, plans

    # mctop variants: merge inside each socket first (local traffic)...
    intra_rounds = math.ceil(math.log2(max(max(per_socket.values()), 2)))
    for i in range(n_threads):
        cost = _merge_cost(cfg, simd_flags[i])
        for _ in range(intra_rounds):
            plans[i].append(
                _Phase(
                    compute=cost * merge_share[i],
                    streams=((local_nodes[i], 2 * merge_share[i] * ebytes),),
                )
            )

    # ...then across sockets along the bandwidth-maximizing tree.  All
    # threads keep cooperating on the merge work every round (the
    # Section 5 reduction-tree policy); what the tree decides is where
    # the *data* flows — sending sockets ship their halves over the
    # chosen (maximum-bandwidth) links.
    tree = build_reduction_tree(mctop)
    alive_sockets = len(per_socket)
    for round_steps in tree.rounds:
        srcs = {st.src for st in round_steps}
        ship_threads = {
            s: max(sum(1 for x in sockets if x == s), 1) for s in srcs
        }
        # Each surviving socket holds n / alive elements; a source
        # socket ships exactly its holding to its destination.
        holding_bytes = n / max(alive_sockets, 1) * ebytes
        for i in range(n_threads):
            s = sockets[i]
            cost = _merge_cost(cfg, simd_flags[i])
            streams: tuple[tuple[int, float], ...]
            if s in srcs:
                step = next(st for st in round_steps if st.src == s)
                dst_node = mctop.node_of_socket(step.dst)
                streams = ((dst_node, holding_bytes / ship_threads[s]),)
            else:
                streams = ((local_nodes[i], 2 * merge_share[i] * ebytes),)
            plans[i].append(
                _Phase(compute=cost * merge_share[i], streams=streams)
            )
        alive_sockets -= len(round_steps)
    return ctxs, plans


def simulate_sort_run(
    machine: Machine,
    mctop: Mctop,
    variant: str,
    n_threads: int,
    cfg: SortCostConfig | None = None,
) -> SortBreakdown:
    """Replay one Figure 9 bar on the discrete-event engine."""
    if variant not in ("gnu", "mctop", "mctop_sse"):
        raise ValueError(f"unknown sort variant {variant!r}")
    cfg = cfg or SortCostConfig()
    ctxs, plans = _build_plans(mctop, variant, n_threads, cfg)
    engine = Engine(machine)
    barrier = Barrier(n_threads)
    phase_times: list[float] = []

    def worker(i: int, plan: list[_Phase]):
        for phase_no, phase in enumerate(plan):
            for node, nbytes in phase.streams:
                yield MemStream(node, nbytes)
            if phase.compute:
                yield Compute(phase.compute)
            yield BarrierWait(barrier)
            if i == 0:
                phase_times.append(engine.now)

    for i, (ctx, plan) in enumerate(zip(ctxs, plans)):
        engine.spawn(ctx, worker(i, plan))
    stats = engine.run()
    to_seconds = 1.0 / (machine.spec.freq_max_ghz * 1e9)
    sequential = phase_times[0] * to_seconds
    return SortBreakdown(
        platform=machine.spec.name,
        variant=variant,
        n_threads=n_threads,
        sequential_seconds=sequential,
        merge_seconds=stats.seconds - sequential,
    )


@dataclass
class Figure9Result:
    bars: list[SortBreakdown] = field(default_factory=list)

    def get(self, variant: str, n_threads: int) -> SortBreakdown:
        for b in self.bars:
            if b.variant == variant and b.n_threads == n_threads:
                return b
        raise KeyError((variant, n_threads))

    def speedup(self, n_threads: int, variant: str = "mctop") -> float:
        return (
            self.get("gnu", n_threads).total_seconds
            / self.get(variant, n_threads).total_seconds
        )

    def merge_speedup(self, n_threads: int, variant: str = "mctop") -> float:
        return (
            self.get("gnu", n_threads).merge_seconds
            / self.get(variant, n_threads).merge_seconds
        )

    def table(self) -> str:
        lines = [
            f"{'platform':<10} {'threads':>7} {'variant':<10} "
            f"{'sequential':>11} {'merging':>9} {'total':>8}"
        ]
        for b in self.bars:
            lines.append(
                f"{b.platform:<10} {b.n_threads:>7} {b.variant:<10} "
                f"{b.sequential_seconds:>10.2f}s {b.merge_seconds:>8.2f}s "
                f"{b.total_seconds:>7.2f}s"
            )
        return "\n".join(lines)


def run_figure9(
    machine: Machine,
    mctop: Mctop,
    cfg: SortCostConfig | None = None,
    include_sse: bool = True,
) -> Figure9Result:
    """Both Figure 9 groups: 16 threads and the full machine.

    SSE bars are produced only for platforms with SIMD (the paper skips
    them on SPARC).
    """
    variants = ["gnu", "mctop"]
    if include_sse and machine.spec.name != "sparc":
        variants.append("mctop_sse")
    result = Figure9Result()
    groups = sorted({min(16, machine.spec.n_contexts), machine.spec.n_contexts})
    for n_threads in groups:
        for variant in variants:
            result.bars.append(
                simulate_sort_run(machine, mctop, variant, n_threads, cfg)
            )
    return result

"""Merge kernels: scalar two-pointer and a SIMD-style bitonic network.

The scalar merge suffers branch mispredictions (the direction of every
comparison is data-dependent); the paper's ``mctop_sort_sse`` variant
instead merges 8 elements at a time through a bitonic merge network
built from SIMD min/max instructions.  We implement that network with
numpy vector min/max — the same dataflow, element-wise, no branches.
"""

from __future__ import annotations

import numpy as np

#: model constants: cycles per element merged (used by the cost model)
SCALAR_MERGE_CYCLES = 8.0
SIMD_MERGE_CYCLES = 3.0
SIMD_WIDTH = 8


def merge_scalar(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Classic two-pointer merge of two sorted arrays."""
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    i = j = k = 0
    while i < a.size and j < b.size:
        if a[i] <= b[j]:
            out[k] = a[i]
            i += 1
        else:
            out[k] = b[j]
            j += 1
        k += 1
    if i < a.size:
        out[k:] = a[i:]
    else:
        out[k:] = b[j:]
    return out


def bitonic_merge8(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted 8-vectors into the sorted low and high halves.

    The bitonic merge network for 16 inputs: reverse one input, then
    log2(16) = 4 rounds of element-wise min/max exchanges with strides
    8, 4, 2, 1 — exactly what the SSE implementation does with
    ``PMINSD``/``PMAXSD`` shuffles.
    """
    if a.size != SIMD_WIDTH or b.size != SIMD_WIDTH:
        raise ValueError(f"bitonic_merge8 needs two {SIMD_WIDTH}-vectors")
    v = np.concatenate([a, b[::-1]])  # bitonic sequence of 16
    for stride in (8, 4, 2, 1):
        v = v.reshape(-1, 2, stride)
        lo = np.minimum(v[:, 0, :], v[:, 1, :])
        hi = np.maximum(v[:, 0, :], v[:, 1, :])
        v = np.stack([lo, hi], axis=1).reshape(-1)
    return v[:SIMD_WIDTH].copy(), v[SIMD_WIDTH:].copy()


def merge_simd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays using the 8-wide bitonic kernel.

    Streams 8-element blocks from whichever input has the smaller next
    element, keeping the network's high half as the running "carry".
    Falls back to scalar for non-multiple-of-8 tails.
    """
    if a.size % SIMD_WIDTH or b.size % SIMD_WIDTH:
        return merge_scalar(a, b)
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    ia = ib = iout = 0
    carry = None
    while ia < a.size or ib < b.size:
        if carry is None:
            block_a = a[ia:ia + SIMD_WIDTH]
            ia += SIMD_WIDTH
            if ib < b.size:
                block_b = b[ib:ib + SIMD_WIDTH]
                ib += SIMD_WIDTH
            else:
                out[iout:iout + SIMD_WIDTH] = block_a
                iout += SIMD_WIDTH
                continue
            low, carry = bitonic_merge8(block_a, block_b)
        else:
            take_a = ia < a.size and (ib >= b.size or a[ia] <= b[ib])
            if take_a:
                nxt = a[ia:ia + SIMD_WIDTH]
                ia += SIMD_WIDTH
            else:
                nxt = b[ib:ib + SIMD_WIDTH]
                ib += SIMD_WIDTH
            low, carry = bitonic_merge8(carry, nxt)
        out[iout:iout + SIMD_WIDTH] = low
        iout += SIMD_WIDTH
    out[iout:iout + SIMD_WIDTH] = carry
    return out

"""Topology-aware work stealing (Section 5, "Topology-Aware Work Stealing").

The paper's policy: *"If the local work queue is empty, steal from the
queue of worker threads that are the closest in terms of latency.  If
unsuccessful, continue with the contexts that are the next closest."*
That is exactly MCTOP's proximity order, so the scheduler needs no
platform knowledge at all.

Two victim-selection strategies are provided for comparison:

* ``"mctop"`` — walk the proximity order (SMT sibling first, then the
  same socket, then ever more remote sockets);
* ``"random"`` — the classic topology-agnostic Cilk-style choice.

Both run on the discrete-event engine; every steal pays the coherence
round-trip to the victim plus the cost of pulling the stolen chunk's
data from the victim's node, so proximity genuinely matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mctop import Mctop
from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.place import Placement, Policy
from repro.sim import Communicate, Compute, Engine, MemChase, Sleep


@dataclass
class WorkItem:
    """One chunk of work: compute cycles plus its data's home node."""

    cycles: float
    home_node: int


@dataclass
class WorkerQueue:
    """A single worker's deque (owner pops the front, thieves the back)."""

    items: list[WorkItem] = field(default_factory=list)

    def pop_local(self) -> WorkItem | None:
        return self.items.pop(0) if self.items else None

    def steal(self) -> WorkItem | None:
        return self.items.pop() if self.items else None

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class StealStats:
    """What a work-stealing run reports."""

    seconds: float
    items_executed: int
    steals: int
    failed_steals: int
    remote_socket_steals: int


class WorkStealingScheduler:
    """A fork-join pool with pluggable victim selection."""

    #: per-item data pulled from its home node when executed remotely
    STEAL_CHASE_ACCESSES = 12.0
    #: idle wait between failed steal sweeps
    IDLE_BACKOFF = 2_000.0

    def __init__(
        self,
        machine: Machine,
        mctop: Mctop,
        n_workers: int,
        strategy: str = "mctop",
        placement_policy: Policy = Policy.RR_CORE,
        seed: int = 0,
    ):
        if strategy not in ("mctop", "random"):
            raise SimulationError(f"unknown steal strategy {strategy!r}")
        self.machine = machine
        self.mctop = mctop
        self.strategy = strategy
        self._rng = np.random.default_rng(seed)
        placement = Placement(mctop, placement_policy, n_threads=n_workers)
        self.ctxs = placement.ordering
        self.queues = [WorkerQueue() for _ in self.ctxs]
        # Precompute each worker's victim order.
        self._victims: list[list[int]] = []
        for i, ctx in enumerate(self.ctxs):
            others = [j for j in range(len(self.ctxs)) if j != i]
            if strategy == "mctop":
                others.sort(key=lambda j: (mctop.get_latency(ctx, self.ctxs[j]),
                                           self.ctxs[j]))
            self._victims.append(others)

    # ----------------------------------------------------------- loading
    def load_imbalanced(self, n_items: int, cycles_per_item: float,
                        hot_workers: int = 1) -> None:
        """Put all the work on a few queues (the imbalance that makes
        stealing matter), with data on the hot workers' local nodes."""
        hot = list(range(min(hot_workers, len(self.ctxs))))
        for k in range(n_items):
            owner = hot[k % len(hot)]
            node = self.mctop.get_local_node(self.ctxs[owner])
            self.queues[owner].items.append(WorkItem(cycles_per_item, node))

    # ----------------------------------------------------------- running
    def run(self) -> StealStats:
        engine = Engine(self.machine)
        stats = StealStats(0.0, 0, 0, 0, 0)
        total_items = sum(len(q) for q in self.queues)
        done = {"count": 0}

        def worker(i: int):
            my_socket = self.mctop.socket_of_context(self.ctxs[i])
            while done["count"] < total_items:
                item = self.queues[i].pop_local()
                victim = None
                if item is None:
                    victims = self._victims[i]
                    if self.strategy == "random":
                        victims = list(victims)
                        self._rng.shuffle(victims)
                    for j in victims:
                        # Probing a queue is a coherence round-trip.
                        yield Communicate(self.ctxs[j])
                        item = self.queues[j].steal()
                        if item is not None:
                            victim = j
                            stats.steals += 1
                            if (self.mctop.socket_of_context(self.ctxs[j])
                                    != my_socket):
                                stats.remote_socket_steals += 1
                            break
                        stats.failed_steals += 1
                        if done["count"] >= total_items:
                            return
                if item is None:
                    yield Sleep(self.IDLE_BACKOFF)
                    continue
                if victim is not None or (
                    item.home_node != self.mctop.get_local_node(self.ctxs[i])
                ):
                    # Stolen (or remote) work drags its data along.
                    yield MemChase(item.home_node, self.STEAL_CHASE_ACCESSES)
                yield Compute(item.cycles)
                done["count"] += 1
                stats.items_executed += 1

        for i, ctx in enumerate(self.ctxs):
            engine.spawn(ctx, worker(i))
        run_stats = engine.run()
        stats.seconds = run_stats.seconds
        return stats


def compare_strategies(
    machine: Machine,
    mctop: Mctop,
    n_workers: int,
    n_items: int = 400,
    cycles_per_item: float = 40_000.0,
    seed: int = 0,
) -> dict[str, StealStats]:
    """Run the same imbalanced workload under both victim orders."""
    out: dict[str, StealStats] = {}
    # One overloaded worker per socket (RR placement spreads workers),
    # so a proximity-aware thief can always find same-socket work while
    # a random thief usually crosses the interconnect.
    hot = min(mctop.n_sockets, n_workers)
    for strategy in ("mctop", "random"):
        scheduler = WorkStealingScheduler(
            machine, mctop, n_workers, strategy=strategy, seed=seed
        )
        scheduler.load_imbalanced(n_items, cycles_per_item, hot_workers=hot)
        out[strategy] = scheduler.run()
    return out

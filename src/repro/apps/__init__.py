"""The paper's four application studies (Section 7).

* :mod:`repro.apps.locks` — educated lock backoffs (Figure 8);
* :mod:`repro.apps.sort` — topology-aware mergesort (Figure 9);
* :mod:`repro.apps.mapreduce` — Metis with MCTOP-PLACE (Figures 10-11);
* :mod:`repro.apps.openmp` — the MCTOP_MP OpenMP extension (Figure 12).
"""

"""Green-Marl-style graph kernels.

Each kernel exists twice: a *functional* implementation over a real
:class:`~repro.apps.openmp.graphs.CsrGraph` (tested for correctness)
and a :class:`KernelProfile` that the Figure 12 cost model replays on
the simulated machine.  The six workloads are the ones Figure 12
evaluates: Communities, Hop Distance, PageRank, Potential Friends,
Random Degree Sampling and the two-kernel Combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.openmp.graphs import CsrGraph
from repro.place import Policy


# ------------------------------------------------------------ functional
def pagerank(graph: CsrGraph, iterations: int = 10, damping: float = 0.85) -> np.ndarray:
    """Power-iteration PageRank."""
    n = graph.n_nodes
    rank = np.full(n, 1.0 / n)
    out_degree = np.maximum(graph.degrees(), 1)
    src = np.repeat(np.arange(n), graph.degrees())
    for _ in range(iterations):
        contrib = rank / out_degree
        incoming = np.zeros(n)
        np.add.at(incoming, graph.targets, contrib[src])
        rank = (1 - damping) / n + damping * incoming
    return rank


def hop_distance(graph: CsrGraph, source: int = 0) -> np.ndarray:
    """BFS levels from a source (-1 for unreachable nodes)."""
    dist = np.full(graph.n_nodes, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if dist[v] < 0:
                    dist[v] = level
                    nxt.append(int(v))
        frontier = nxt
    return dist


def communities(graph: CsrGraph, max_iters: int = 50) -> np.ndarray:
    """Synchronous min-label propagation until stable."""
    labels = np.arange(graph.n_nodes, dtype=np.int64)
    for _ in range(max_iters):
        new = labels.copy()
        for u in range(graph.n_nodes):
            nbrs = graph.neighbors(u)
            if nbrs.size:
                new[u] = min(labels[u], labels[nbrs].min())
        if (new == labels).all():
            break
        labels = new
    return labels


def potential_friends(graph: CsrGraph, max_candidates: int = 5) -> dict[int, list[int]]:
    """Friends-of-friends that are not already friends (2-hop minus 1-hop)."""
    out: dict[int, list[int]] = {}
    for u in range(graph.n_nodes):
        direct = set(graph.neighbors(u).tolist())
        candidates: set[int] = set()
        for v in graph.neighbors(u):
            candidates.update(graph.neighbors(int(v)).tolist())
        candidates -= direct | {u}
        out[u] = sorted(candidates)[:max_candidates]
    return out


def random_degree_sampling(graph: CsrGraph, n_samples: int, seed: int = 0) -> np.ndarray:
    """Sample nodes with probability proportional to their degree."""
    rng = np.random.default_rng(seed)
    degrees = graph.degrees().astype(float)
    total = degrees.sum()
    if total == 0:
        return rng.integers(0, graph.n_nodes, n_samples)
    return rng.choice(graph.n_nodes, size=n_samples, p=degrees / total)


def combination(graph: CsrGraph, iterations: int = 5) -> tuple[np.ndarray, dict]:
    """The paper's Combination: PageRank, then Potential Friends."""
    return pagerank(graph, iterations), potential_friends(graph)


# ------------------------------------------------------------- profiles
@dataclass(frozen=True)
class KernelProfile:
    """One parallel region's resource demands, per superstep.

    ``random_access_per_edge`` dependent loads chase neighbour data
    (NUMA-latency bound); ``stream_bytes_per_edge`` flow sequentially
    (bandwidth bound); ``compute_per_edge`` cycles run in-core.
    """

    name: str
    paper_policy: Policy
    supersteps: int
    random_access_per_edge: float
    stream_bytes_per_edge: float
    compute_per_edge: float
    smt_cache_thrash: float = 1.0


COMMUNITIES = KernelProfile(
    name="communities",
    paper_policy=Policy.CON_CORE_HWC,
    supersteps=24,
    random_access_per_edge=0.55,
    stream_bytes_per_edge=10.0,
    compute_per_edge=3.0,
)

HOP_DISTANCE = KernelProfile(
    name="hop-distance",
    paper_policy=Policy.CON_CORE_HWC,
    supersteps=40,  # one per BFS level: many small steps
    random_access_per_edge=0.25,
    stream_bytes_per_edge=3.0,
    compute_per_edge=1.2,
)

PAGERANK = KernelProfile(
    name="pagerank",
    paper_policy=Policy.BALANCE_CORE_HWC,  # the paper's "BALANCE"
    supersteps=10,
    random_access_per_edge=0.30,
    stream_bytes_per_edge=16.0,  # rank + contribution arrays
    compute_per_edge=2.0,
)

POTENTIAL_FRIENDS = KernelProfile(
    name="potential-friends",
    paper_policy=Policy.CON_CORE_HWC,
    supersteps=6,
    random_access_per_edge=0.9,  # 2-hop expansion is pointer chasing
    stream_bytes_per_edge=6.0,
    compute_per_edge=5.0,
    smt_cache_thrash=1.2,
)

RANDOM_DEGREE_SAMPLING = KernelProfile(
    name="rand-degree-sampling",
    paper_policy=Policy.CON_CORE_HWC,
    supersteps=4,
    random_access_per_edge=0.7,
    stream_bytes_per_edge=4.0,
    compute_per_edge=1.0,
)

#: Combination = PageRank followed by Potential Friends; MCTOP_MP can
#: switch policy between the two regions, plain OpenMP cannot.
COMBINATION_PARTS = (PAGERANK, POTENTIAL_FRIENDS)

ALL_KERNELS: tuple[KernelProfile, ...] = (
    COMMUNITIES,
    HOP_DISTANCE,
    PAGERANK,
    POTENTIAL_FRIENDS,
    RANDOM_DEGREE_SAMPLING,
)

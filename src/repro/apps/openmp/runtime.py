"""A miniature OpenMP runtime with the MCTOP_MP extension.

Models the relevant slice of libgomp: a team of threads, static
work-sharing of parallel-for regions — plus the paper's additions
(Section 7.4): ``omp_set_binding_policy`` to choose an MCTOP-PLACE
policy *at runtime*, switchable between parallel regions, which vanilla
OpenMP (environment-variable places, fixed at startup) cannot do.

Functional execution is sequential-deterministic: region bodies run
chunk by chunk in thread order, so results are reproducible while the
thread/context mapping is exactly what a real run would pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import PlacementError
from repro.core.mctop import Mctop
from repro.place import Placement, PlacementPool, Policy


@dataclass(frozen=True)
class TeamThread:
    """One member of the current team."""

    thread_id: int
    ctx: int | None  # None when threads are not pinned (vanilla mode)
    chunk: range


class OpenMpRuntime:
    """The runtime: vanilla by default, MCTOP_MP when given a topology."""

    def __init__(self, mctop: Mctop | None = None,
                 default_threads: int | None = None):
        self.mctop = mctop
        self._pool = (PlacementPool(mctop, _warn=False)
                      if mctop is not None else None)
        self._binding: Placement | None = None
        self.default_threads = default_threads or (
            mctop.n_contexts if mctop is not None else 4
        )
        self.regions_run = 0

    # ------------------------------------------------------ MCTOP_MP API
    @property
    def supports_binding(self) -> bool:
        return self._pool is not None

    def omp_set_binding_policy(
        self,
        policy: Policy | str,
        n_threads: int | None = None,
        n_sockets: int | None = None,
    ) -> Placement:
        """The paper's extension: select a placement policy at runtime."""
        if self._pool is None:
            raise PlacementError(
                "this runtime was built without MCTOP (vanilla OpenMP); "
                "binding policies need libmctop"
            )
        self._binding = self._pool.set_policy(policy, n_threads, n_sockets)
        return self._binding

    def omp_get_binding_policy(self) -> Policy | None:
        return self._binding.policy if self._binding is not None else None

    def current_team(self, n_iterations: int,
                     n_threads: int | None = None) -> list[TeamThread]:
        """The team (with pinned contexts and static chunks) a parallel
        region of ``n_iterations`` would run with."""
        if self._binding is not None and n_threads is None:
            n = self._binding.n_threads
        else:
            n = n_threads or self.default_threads
        ctxs: list[int | None]
        if self._binding is not None:
            ctxs = list(self._binding.ordering[:n])
        else:
            ctxs = [None] * n  # vanilla: the OS decides, nothing pinned
        team = []
        base, extra = divmod(n_iterations, n)
        start = 0
        for tid in range(n):
            size = base + (1 if tid < extra else 0)
            team.append(TeamThread(tid, ctxs[tid], range(start, start + size)))
            start += size
        return team

    # ------------------------------------------------------ parallel for
    def parallel_for(
        self,
        n_iterations: int,
        body: Callable[[int], None],
        n_threads: int | None = None,
    ) -> list[TeamThread]:
        """Run ``body(i)`` for every iteration with static scheduling.

        Returns the team used (the interesting output for placement
        assertions); bodies run in thread order for determinism.
        """
        team = self.current_team(n_iterations, n_threads)
        for member in team:
            for i in member.chunk:
                body(i)
        self.regions_run += 1
        return team

"""Synthetic graphs in CSR form.

Green-Marl's evaluation graphs (100M nodes, 800M edges) obviously do
not fit a functional Python run; the kernels operate on scaled-down
graphs with the same degree structure, and the Figure 12 cost model
works from node/edge *counts* only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CsrGraph:
    """Compressed-sparse-row adjacency."""

    offsets: np.ndarray  # int64, len n_nodes + 1
    targets: np.ndarray  # int32, len n_edges

    @property
    def n_nodes(self) -> int:
        return self.offsets.size - 1

    @property
    def n_edges(self) -> int:
        return self.targets.size

    def neighbors(self, node: int) -> np.ndarray:
        return self.targets[self.offsets[node]:self.offsets[node + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)


def uniform_graph(n_nodes: int, avg_degree: int, seed: int = 0) -> CsrGraph:
    """Erdos-Renyi-style graph with a fixed average degree."""
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(avg_degree, n_nodes).astype(np.int64)
    offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    targets = rng.integers(0, n_nodes, offsets[-1], dtype=np.int32)
    return CsrGraph(offsets=offsets, targets=targets)


def powerlaw_graph(n_nodes: int, avg_degree: int, alpha: float = 2.2,
                   seed: int = 0) -> CsrGraph:
    """Scale-free-ish graph (Zipf degrees, capped), like web/social data."""
    rng = np.random.default_rng(seed)
    raw = rng.zipf(alpha, n_nodes)
    degrees = np.minimum(raw, n_nodes - 1).astype(np.int64)
    scale = max(avg_degree / max(degrees.mean(), 1e-9), 1e-9)
    degrees = np.maximum((degrees * scale).astype(np.int64), 1)
    offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    # Preferential attachment flavour: targets biased toward low ids.
    u = rng.random(offsets[-1])
    targets = (n_nodes * u**2).astype(np.int32)
    return CsrGraph(offsets=offsets, targets=targets)


@dataclass(frozen=True)
class GraphScale:
    """Node/edge counts for the cost model (no materialization)."""

    n_nodes: int
    n_edges: int

    @staticmethod
    def paper() -> "GraphScale":
        """The paper's Green-Marl datasets: 100M nodes, 800M edges."""
        return GraphScale(n_nodes=100_000_000, n_edges=800_000_000)

"""The Figure 12 experiment: MCTOP_MP vs vanilla OpenMP on graph kernels.

Cost model of one parallel region: every superstep, each thread chases
``random_access_per_edge`` dependent loads per edge (divided by the
memory-level parallelism modern cores extract), streams
``stream_bytes_per_edge`` and computes, then crosses a barrier.  What
placement changes is *where* those accesses land:

* vanilla OpenMP does not pin threads and the graph is first-touched by
  whichever contexts the OS picked, so accesses spread *uniformly* over
  all memory nodes — on a big machine almost everything is remote;
* MCTOP_MP pins with a policy and data is first-touched by its
  consumer, so most accesses stay local (``LOCALITY`` below).

MCTOP_MP additionally pays for its automatic policy selection: it runs
a couple of supersteps under every candidate configuration before
committing — for short, sync-heavy kernels (Hop Distance) this
overhead can make it *slower* than vanilla, exactly the up-to-9%
regressions the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mctop import Mctop
from repro.hardware.machine import Machine
from repro.apps.openmp.graphs import GraphScale
from repro.apps.openmp.kernels import (
    ALL_KERNELS,
    COMBINATION_PARTS,
    KernelProfile,
)
from repro.place import Placement, Policy
from repro.sim import Barrier, BarrierWait, Compute, Engine, MemChase, MemStream

#: effective memory-level parallelism of dependent graph accesses
MLP = 10.0
#: fraction of a distributed (first-touch-by-consumer) graph that a
#: thread finds on its local node
LOCALITY = 0.7
#: supersteps run per candidate during automatic policy selection
SAMPLE_STEPS = 2
#: fraction of the graph the selection samples ("small parts of the
#: workload", Section 7.4)
SAMPLE_FRACTION = 0.04

#: candidate configurations the auto-selector tries (policy grid)
CANDIDATE_POLICIES = (
    Policy.CON_HWC,
    Policy.CON_CORE_HWC,
    Policy.BALANCE_CORE_HWC,
    Policy.RR_CORE,
)


def _access_mix(mctop: Mctop, ctx: int, layout: str) -> list[tuple[int, float]]:
    """(node, weight) distribution of one thread's memory accesses."""
    nodes = mctop.node_ids()
    if layout == "uniform":
        return [(n, 1.0 / len(nodes)) for n in nodes]
    if layout == "distributed":
        local = mctop.get_local_node(ctx)
        others = [n for n in nodes if n != local]
        if not others:
            return [(local, 1.0)]
        remote_w = (1.0 - LOCALITY) / len(others)
        return [(local, LOCALITY)] + [(n, remote_w) for n in others]
    raise ValueError(f"unknown layout {layout!r}")


def simulate_region(
    machine: Machine,
    mctop: Mctop,
    profile: KernelProfile,
    placement: Placement | None,
    layout: str,
    scale: GraphScale,
    supersteps: int | None = None,
) -> float:
    """Seconds one parallel region takes under a placement."""
    if placement is None:  # vanilla: OS spreads over everything
        placement = Placement(mctop, Policy.SEQUENTIAL)
    ctxs = placement.ordering
    n_threads = len(ctxs)
    steps = supersteps if supersteps is not None else profile.supersteps
    edges_per_thread = scale.n_edges / n_threads

    used = set(ctxs)
    engine = Engine(machine)
    barrier = Barrier(n_threads)

    def worker(i: int):
        ctx = ctxs[i]
        mix = _access_mix(mctop, ctx, layout)
        core = mctop.core_of_context(ctx)
        siblings = set(mctop.core_get_contexts(core)) - {ctx}
        thrash = profile.smt_cache_thrash if siblings & used else 1.0
        chases = edges_per_thread * profile.random_access_per_edge / MLP
        stream_bytes = edges_per_thread * profile.stream_bytes_per_edge
        compute = edges_per_thread * profile.compute_per_edge * thrash
        for _ in range(steps):
            for node, w in mix:
                yield MemChase(node, chases * w)
                yield MemStream(node, stream_bytes * w)
            yield Compute(compute)
            yield BarrierWait(barrier)

    for i, ctx in enumerate(ctxs):
        engine.spawn(ctx, worker(i))
    return engine.run().seconds


def candidate_grid(mctop: Mctop) -> list[tuple[Policy, int]]:
    """(policy, n_threads) configurations the auto-selector evaluates."""
    grid = []
    for policy in CANDIDATE_POLICIES:
        for n in sorted({mctop.n_cores, mctop.n_contexts}):
            grid.append((policy, n))
    return grid


@dataclass
class McTopMpRun:
    """Outcome of one MCTOP_MP auto-selected region."""

    kernel: str
    seconds: float
    sampling_seconds: float
    chosen: tuple[Policy, int] | None


def run_mctop_mp(
    machine: Machine,
    mctop: Mctop,
    profile: KernelProfile,
    scale: GraphScale,
) -> McTopMpRun:
    """Automatic policy selection, then the full region under the winner."""
    sampling = 0.0
    best: tuple[Policy, int] | None = None
    best_sample = float("inf")
    sample_scale = GraphScale(
        n_nodes=max(int(scale.n_nodes * SAMPLE_FRACTION), 1),
        n_edges=max(int(scale.n_edges * SAMPLE_FRACTION), 1),
    )
    for policy, n in candidate_grid(mctop):
        placement = Placement(mctop, policy, n_threads=n)
        sample = simulate_region(
            machine, mctop, profile, placement, "distributed", sample_scale,
            supersteps=SAMPLE_STEPS,
        )
        sampling += sample
        if sample < best_sample:
            best_sample = sample
            best = (policy, n)
    placement = Placement(mctop, best[0], n_threads=best[1])
    full = simulate_region(
        machine, mctop, profile, placement, "distributed", scale
    )
    return McTopMpRun(
        kernel=profile.name,
        seconds=sampling + full,
        sampling_seconds=sampling,
        chosen=best,
    )


def run_vanilla(
    machine: Machine,
    mctop: Mctop,
    profile: KernelProfile,
    scale: GraphScale,
) -> float:
    """Vanilla libgomp: unpinned team over every context, uniform data."""
    return simulate_region(
        machine, mctop, profile, None, "uniform", scale
    )


@dataclass
class Figure12Cell:
    platform: str
    workload: str
    vanilla_seconds: float
    mctop_seconds: float
    chosen: tuple[Policy, int] | None = None

    @property
    def relative_time(self) -> float:
        return self.mctop_seconds / self.vanilla_seconds


@dataclass
class Figure12Result:
    cells: list[Figure12Cell] = field(default_factory=list)

    def average_relative_time(self) -> float:
        return sum(c.relative_time for c in self.cells) / len(self.cells)

    def table(self) -> str:
        lines = [
            f"{'platform':<10} {'workload':<22} {'rel time':>8}  chosen"
        ]
        for c in self.cells:
            chosen = (
                f"{c.chosen[0].value}/{c.chosen[1]}" if c.chosen else "-"
            )
            lines.append(
                f"{c.platform:<10} {c.workload:<22} {c.relative_time:>8.2f}"
                f"  {chosen}"
            )
        return "\n".join(lines)


def run_figure12(
    machine: Machine,
    mctop: Mctop,
    scale: GraphScale | None = None,
    kernels: tuple[KernelProfile, ...] = ALL_KERNELS,
    include_combination: bool = True,
) -> Figure12Result:
    """All Figure 12 workloads on one platform."""
    scale = scale or GraphScale.paper()
    result = Figure12Result()
    for profile in kernels:
        vanilla = run_vanilla(machine, mctop, profile, scale)
        placed = run_mctop_mp(machine, mctop, profile, scale)
        result.cells.append(
            Figure12Cell(
                platform=machine.spec.name,
                workload=profile.name,
                vanilla_seconds=vanilla,
                mctop_seconds=placed.seconds,
                chosen=placed.chosen,
            )
        )
    if include_combination:
        # Vanilla cannot change placement between the two kernels; the
        # single (unpinned, uniform) configuration serves both, while
        # MCTOP_MP re-selects per region.
        vanilla = sum(
            run_vanilla(machine, mctop, p, scale) for p in COMBINATION_PARTS
        )
        placed = sum(
            run_mctop_mp(machine, mctop, p, scale).seconds
            for p in COMBINATION_PARTS
        )
        result.cells.append(
            Figure12Cell(
                platform=machine.spec.name,
                workload="combination",
                vanilla_seconds=vanilla,
                mctop_seconds=placed,
            )
        )
    return result

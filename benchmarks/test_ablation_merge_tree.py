"""Ablation: the bandwidth-maximizing reduction tree vs naive pairing.

mctop_sort's cross-socket merge tree pairs sockets to maximize link
bandwidth (Section 5).  This ablation replaces the greedy pairing with
index-order pairing (socket 0 with socket 1, 2 with 3, ...) on the
Opteron — whose links range from 5.3 GB/s (MCM) through 3.0 GB/s down
to ~2 GB/s two-hop paths — and measures the merging-time difference.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.core.mctop import Mctop
from repro.apps.sort import build_reduction_tree


def _tree_round_seconds(mctop: Mctop, steps) -> float:
    """Time for one merge round: slowest transfer of the round.

    Each source socket ships its share over its pair's path; the round
    ends when the slowest pair finishes (barrier semantics).
    """
    share_gb = 1.0 / mctop.n_sockets  # 1 GB total, evenly distributed
    worst = 0.0
    for step in steps:
        link = mctop.links.get(
            (min(step.src, step.dst), max(step.src, step.dst))
        )
        bw = link.bandwidth if link and link.bandwidth else 1.0
        worst = max(worst, share_gb / bw)
    return worst


def _naive_rounds(mctop: Mctop):
    """First-with-last pairing: a topology-agnostic strawman.

    (Adjacent-index pairing would accidentally match the Opteron's MCM
    siblings — the point is that *some* agnostic pairings are bad, and
    only a bandwidth-aware policy is reliably good.)  Pairing socket i
    with socket n-1-i routes Opteron traffic over its 2-hop paths.
    """
    from repro.apps.sort.tree import MergeStep

    alive = mctop.socket_ids()
    rounds = []
    while len(alive) > 1:
        steps = []
        nxt = []
        half = len(alive) // 2
        for i in range(half):
            steps.append(MergeStep(src=alive[len(alive) - 1 - i],
                                   dst=alive[i], bandwidth=None))
            nxt.append(alive[i])
        if len(alive) % 2:
            nxt.append(alive[half])
        rounds.append(steps)
        alive = nxt
    return rounds


@pytest.mark.benchmark(group="ablation merge tree")
def test_bandwidth_tree_beats_index_pairing(benchmark, topo_cache):
    mctop = topo_cache.topology("opteron")

    def run():
        smart = build_reduction_tree(mctop)
        smart_time = sum(
            _tree_round_seconds(mctop, r) for r in smart.rounds
        )
        naive_time = sum(
            _tree_round_seconds(mctop, r) for r in _naive_rounds(mctop)
        )
        return smart_time, naive_time

    smart_time, naive_time = once(benchmark, run)
    print("\n--- Ablation: cross-socket merge tree (Opteron, 1 GB) ---")
    print(f"  bandwidth-maximizing tree : {smart_time * 1e3:7.1f} ms")
    print(f"  first-with-last pairing   : {naive_time * 1e3:7.1f} ms")
    print(f"  advantage                 : {naive_time / smart_time:7.2f}x")
    benchmark.extra_info["advantage"] = round(naive_time / smart_time, 3)

    assert smart_time < naive_time * 0.9  # a real, not marginal, win
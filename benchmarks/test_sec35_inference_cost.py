"""Section 3.5, "Performance": the cost of MCTOP-ALG itself.

The paper: ~3 seconds on the smallest platform (Ivy, 40 contexts), 96
seconds on Westmere (160 contexts, with DVFS).  Our simulated probe has
different absolute costs, but the quadratic growth with the context
count — the actual systems claim — must hold, and we report both the
wall-clock time and the number of samples taken.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import (
    InferenceConfig,
    InferenceReport,
    LatencyTableConfig,
    infer_topology,
)
from repro.hardware import get_machine

#: library-default repetitions for this bench (the cost benchmark is
#: the one place where the measurement effort is the subject)
_CFG = InferenceConfig(table=LatencyTableConfig(repetitions=75))


@pytest.mark.benchmark(group="sec3.5 inference cost")
@pytest.mark.parametrize("platform", ["ivy", "haswell", "westmere"])
def test_inference_cost(benchmark, platform):
    machine = get_machine(platform)
    report = InferenceReport()

    def run():
        return infer_topology(
            machine, seed=2, config=_CFG, report=report
        )

    mctop = benchmark.pedantic(run, rounds=1, iterations=1)
    n = machine.spec.n_contexts
    print(
        f"\n{platform}: {n} contexts, {report.samples_taken} samples, "
        f"{report.retried_pairs} retried pairs, "
        f"{report.discarded_samples} discarded"
    )
    benchmark.extra_info["contexts"] = n
    benchmark.extra_info["samples"] = report.samples_taken
    # Sample count grows with the number of context pairs.
    n_pairs = n * (n - 1) // 2
    assert report.samples_taken >= n_pairs * 75
    assert mctop.n_contexts == n
    # The always-on instrumentation saw the whole run: every pair
    # counted, every step spanned, and the provenance digest agrees.
    registry = report.obs.registry
    assert registry.value("lat_table.pairs") == n_pairs
    assert registry.value("lat_table.samples") == report.samples_taken
    span_names = {s.name for s in report.obs.tracer.spans()}
    assert {"lat_table.collect", "infer.clustering", "infer.topology",
            "infer"} <= span_names
    assert mctop.provenance.trace_summary["counters"][
        "lat_table.pairs"
    ] == n_pairs

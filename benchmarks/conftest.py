"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark file regenerates one table or figure of the paper and
prints the corresponding rows (run with ``pytest benchmarks/
--benchmark-only -s`` to see them).  Topologies are inferred once per
session and cached, like libmctop's description files.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import InferenceConfig, LatencyTableConfig, infer_topology
from repro.hardware import get_machine

#: benchmark-grade inference: fewer repetitions than the library default
#: (the medians are already stable; see the Section 3.5 bench for the
#: full-cost measurement)
BENCH_INFERENCE = InferenceConfig(table=LatencyTableConfig(repetitions=31))


class TopologyCache:
    def __init__(self):
        self._machines = {}
        self._topologies = {}

    def machine(self, name: str):
        if name not in self._machines:
            self._machines[name] = get_machine(name)
        return self._machines[name]

    def topology(self, name: str):
        if name not in self._topologies:
            self._topologies[name] = infer_topology(
                self.machine(name), seed=1, config=BENCH_INFERENCE
            )
        return self._topologies[name]


@pytest.fixture(scope="session")
def topo_cache():
    return TopologyCache()


def once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

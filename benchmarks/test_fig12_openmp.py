"""Figure 12: MCTOP_MP vs vanilla OpenMP on Green-Marl graph workloads.

Four platforms (the available Green-Marl does not support SPARC), six
workloads (Communities, Hop Distance, PageRank, Potential Friends,
Random Degree Sampling, Combination) on the paper's 100M-node /
800M-edge scale.  Headline: 22% faster on average, up to ~9% slower in
a few cells (the automatic policy-selection overhead), the Combination
workload impossible to match with static OpenMP places.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.hardware import OPENMP_PLATFORMS
from repro.apps.openmp import GraphScale, run_figure12

_SCALE = GraphScale.paper()


@pytest.mark.benchmark(group="fig12 openmp")
@pytest.mark.parametrize("platform", OPENMP_PLATFORMS)
def test_fig12_graph_workloads(benchmark, topo_cache, platform):
    machine = topo_cache.machine(platform)
    mctop = topo_cache.topology(platform)

    result = once(
        benchmark, lambda: run_figure12(machine, mctop, scale=_SCALE)
    )
    print(f"\n--- Figure 12 ({platform}, 100M nodes / 800M edges) ---")
    print(result.table())
    avg = result.average_relative_time()
    print(f"average relative time: {avg:.2f}")
    benchmark.extra_info["avg_relative_time"] = round(avg, 3)

    assert avg < 1.0  # MCTOP_MP wins on average on every platform
    rel = {c.workload: c.relative_time for c in result.cells}
    # No pathological losses: the worst cell stays within the paper's
    # "up to 9% slower" ballpark (we allow a little extra slack).
    assert max(rel.values()) < 1.15
    assert "combination" in rel


@pytest.mark.benchmark(group="fig12 openmp")
def test_fig12_aggregate(benchmark, topo_cache):
    """Paper: 22% average improvement across platforms and workloads."""

    def run():
        cells = []
        for platform in OPENMP_PLATFORMS:
            res = run_figure12(
                topo_cache.machine(platform),
                topo_cache.topology(platform),
                scale=_SCALE,
            )
            cells.extend(c.relative_time for c in res.cells)
        return sum(cells) / len(cells), min(cells), max(cells)

    avg, best, worst = once(benchmark, run)
    print("\n--- Section 7.4 aggregate (paper avg: 0.78) ---")
    print(f"  average {avg:.2f}, best cell {best:.2f}, worst cell {worst:.2f}")
    benchmark.extra_info["avg"] = round(avg, 3)
    assert avg < 0.95
    assert best < 0.6  # big machines gain a lot (paper: down to 0.16)
"""Figure 10: Metis with MCTOP-PLACE vs default Metis, 4 workloads.

Each cell compares the paper's per-workload policy (K-Means
CON_CORE_HWC, Mean CON_HWC, Word Count RR, Matrix Mult CON_CORE)
against Metis's default sequential pinning, both at their best thread
count.  Headline: 17% faster on average, 14% less energy on the Intel
machines, and MCTOP-Metis never uses more threads than the default.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.hardware import PAPER_PLATFORMS
from repro.apps.mapreduce import run_figure10


@pytest.mark.benchmark(group="fig10 metis")
@pytest.mark.parametrize("platform", PAPER_PLATFORMS)
def test_fig10_metis_relative_time(benchmark, topo_cache, platform):
    machine = topo_cache.machine(platform)
    mctop = topo_cache.topology(platform)

    result = once(benchmark, lambda: run_figure10(machine, mctop))
    print(f"\n--- Figure 10 ({platform}) ---")
    print(result.table())
    avg = result.average_relative_time()
    print(f"average relative time: {avg:.2f}")
    benchmark.extra_info["avg_relative_time"] = round(avg, 3)

    # MCTOP placement never loses meaningfully and never needs more
    # threads than the default to match it (when a cell does use more,
    # it must at least not be slower — the model can produce legitimate
    # ties at different thread counts that the paper's testbeds never
    # hit exactly).
    # "Matching" is judged at the same 1% granularity the thread-count
    # selection itself uses — ties between thread counts are real in a
    # deterministic model.
    for cell in result.cells:
        assert cell.relative_time <= 1.06
        assert (cell.mctop_threads <= cell.default_threads
                or cell.relative_time <= 1.01)
    # Energy is reported exactly on the machines with RAPL.
    has_rapl = machine.spec.power is not None
    assert all(
        (cell.relative_energy is not None) == has_rapl
        for cell in result.cells
    )


@pytest.mark.benchmark(group="fig10 metis")
def test_fig10_aggregate(benchmark, topo_cache):
    """Paper: 17% faster on average; the misconfigured-OS Opteron gains
    the most (its default version allocates on the wrong nodes)."""

    def run():
        averages = {}
        for platform in PAPER_PLATFORMS:
            res = run_figure10(
                topo_cache.machine(platform), topo_cache.topology(platform)
            )
            averages[platform] = res.average_relative_time()
        return averages

    averages = once(benchmark, run)
    print("\n--- Section 7.3 aggregate (paper avg: 0.83) ---")
    for platform, avg in averages.items():
        print(f"  {platform:<10} {avg:.2f}")
    overall = sum(averages.values()) / len(averages)
    print(f"  overall    {overall:.2f}")
    benchmark.extra_info["overall"] = round(overall, 3)
    assert overall < 1.0
    assert averages["opteron"] == min(averages.values())

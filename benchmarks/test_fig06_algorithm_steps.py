"""Figure 6: the four steps of MCTOP-ALG on Ivy.

Regenerates each intermediate artifact of the algorithm on the 40-context
Ivy platform: (1) the raw latency table / heatmap, (2a) the CDF with its
4 clusters, (2b) the normalized table, (3) the component reduction
40 -> 20 -> 2, (4) the final topology.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import once
from repro.core.algorithm import (
    LatencyTableConfig,
    build_components,
    collect_latency_table,
    find_clusters,
    normalize_table,
)
from repro.core.algorithm.clustering import cluster_summary
from repro.core.viz import cdf_dump, latency_heatmap
from repro.hardware import MeasurementContext, get_machine


@pytest.mark.benchmark(group="fig6 algorithm steps")
def test_fig6_mctop_alg_steps_on_ivy(benchmark):
    machine = get_machine("ivy")

    def run():
        probe = MeasurementContext(machine, seed=1)
        table = collect_latency_table(
            probe, LatencyTableConfig(repetitions=31)
        )
        clusters = find_clusters(table.table)
        normalized, _ = normalize_table(table.table, clusters)
        hierarchy = build_components(
            normalized, [c.median for c in clusters]
        )
        return table, clusters, normalized, hierarchy

    table, clusters, normalized, hierarchy = once(benchmark, run)

    print("\n--- Figure 6 (1): latency table heatmap (40x40) ---")
    print(latency_heatmap(table.table))
    print("\n--- Figure 6 (2a): CDF of latency values ---")
    print(cdf_dump(table.table))
    print(cluster_summary(clusters))
    print("\n--- Figure 6 (3): component reduction ---")
    for lvl in hierarchy.levels:
        print(
            f"  level {lvl.level}: {len(lvl.components)} components, "
            f"latency {lvl.latency:.0f}"
        )

    # Paper: 4 clusters (0 / 28 / ~112 / ~308).
    assert len(clusters) == 4
    medians = [c.median for c in clusters]
    assert medians[0] == 0
    assert abs(medians[1] - 28) <= 2
    assert abs(medians[2] - 112) <= 6
    assert abs(medians[3] - 308) <= 6

    # Reduction 40 contexts -> 20 cores -> 2 sockets (-> machine).
    sizes = [len(l.components) for l in hierarchy.levels]
    assert sizes[:3] == [40, 20, 2]

    # The raw table is symmetric with an (approximately) zero diagonal,
    # and context 0/20 are SMT siblings as in the paper's heatmap.
    assert np.allclose(table.table, table.table.T)
    assert abs(table.table[0, 20] - 28) < 6
    benchmark.extra_info["cluster_medians"] = medians

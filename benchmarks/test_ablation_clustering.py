"""Ablation: how much noise / how few repetitions can MCTOP-ALG take?

The paper (Section 3.5) claims its repetition + median + stdev-filter
machinery makes inference robust without kernel-space tricks.  This
bench sweeps (a) the measurement-noise level at fixed repetitions and
(b) the repetition count at fixed noise, and reports the inference
success rate over several seeds — the cliff is the interesting output.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.core.algorithm import (
    InferenceConfig,
    LatencyTableConfig,
    try_infer_topology,
)
from repro.hardware import MeasurementContext, NoiseProfile, get_machine

_SEEDS = range(4)


def _success_rate(machine, noise: NoiseProfile, repetitions: int) -> float:
    config = InferenceConfig(
        table=LatencyTableConfig(repetitions=repetitions),
        plugins=(),
    )
    wins = 0
    for seed in _SEEDS:
        probe = MeasurementContext(machine, noise=noise, seed=seed)
        mctop = try_infer_topology(probe, config=config)
        correct = (
            mctop is not None
            and mctop.n_sockets == machine.spec.n_sockets
            and mctop.n_cores == machine.spec.n_cores
        )
        wins += correct
    return wins / len(_SEEDS)


@pytest.mark.benchmark(group="ablation clustering")
def test_noise_sweep(benchmark):
    machine = get_machine("testbox")
    levels = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]

    def run():
        return {
            lvl: _success_rate(machine, NoiseProfile.noisy(lvl), 41)
            for lvl in levels
        }

    rates = once(benchmark, run)
    print("\n--- Ablation: noise level vs inference success (41 reps) ---")
    for lvl, rate in rates.items():
        print(f"  noise x{lvl:<5} success {rate * 100:5.0f}%")
    benchmark.extra_info["rates"] = rates

    assert rates[0.5] == 1.0  # quiet environments always work
    assert rates[1.0] == 1.0  # the realistic default works
    assert min(rates.values()) < 1.0  # extreme noise eventually breaks it


@pytest.mark.benchmark(group="ablation clustering")
def test_repetition_sweep(benchmark):
    """More repetitions buy robustness at measurement-time cost —
    the trade the paper resolves at n = 2000 on real hardware.

    The sweep uses a spike-dominated environment (frequent interrupt-
    style outliers): medians from a handful of samples get dragged off
    their cluster, medians from many samples do not.  Pure Gaussian
    broadening is *not* curable by repetitions — the stdev gate rejects
    it at any sample count, which the noise sweep above covers.
    """
    machine = get_machine("testbox")
    reps = [5, 11, 41, 101]
    noise = NoiseProfile(jitter_sigma=2.5, spurious_prob=0.12,
                         spurious_scale=250.0)

    def run():
        return {r: _success_rate(machine, noise, r) for r in reps}

    rates = once(benchmark, run)
    print(f"\n--- Ablation: repetitions vs success (12% spike rate) ---")
    for r, rate in rates.items():
        print(f"  reps {r:<4} success {rate * 100:5.0f}%")
    benchmark.extra_info["rates"] = rates
    assert rates[101] >= rates[5]
    assert rates[101] >= 0.75

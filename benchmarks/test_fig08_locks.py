"""Figure 8: lock throughput with MCTOP-educated backoffs, 5 platforms.

Regenerates the per-platform thread sweeps for TAS, TTAS and TICKET
with and without the educated backoff, plus the Section 7.1 aggregate
claims: every algorithm gains on average, TICKET gains the most (paper:
12% / 11% / 39%), TTAS's gains vanish under high contention.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.hardware import PAPER_PLATFORMS
from repro.apps.locks import LockExperimentConfig, run_figure8

_CFG = LockExperimentConfig(iterations=80)


@pytest.mark.benchmark(group="fig8 lock backoffs")
@pytest.mark.parametrize("platform", PAPER_PLATFORMS)
def test_fig8_lock_sweep(benchmark, topo_cache, platform):
    machine = topo_cache.machine(platform)
    mctop = topo_cache.topology(platform)

    result = once(
        benchmark, lambda: run_figure8(machine, mctop, cfg=_CFG)
    )
    print(f"\n--- Figure 8 ({platform}) ---")
    print(result.table())
    gains = {
        algo: result.average_gain(algo) for algo in ("TAS", "TTAS", "TICKET")
    }
    print("average gains: " + ", ".join(
        f"{a} {g * 100:+.1f}%" for a, g in gains.items()
    ))
    benchmark.extra_info["gains"] = {a: round(g, 3) for a, g in gains.items()}

    # Shape claims: TICKET gains most and grows with contention.
    assert gains["TICKET"] > gains["TAS"]
    assert gains["TICKET"] > gains["TTAS"]
    assert gains["TICKET"] > 0.10
    assert gains["TAS"] > 0.05
    ticket = [r for r in result.rows if r.algorithm == "TICKET"]
    assert ticket[-1].relative > ticket[0].relative


@pytest.mark.benchmark(group="fig8 lock backoffs")
def test_fig8_aggregate_gains(benchmark, topo_cache):
    """The paper's cross-platform averages: TAS 12%, TTAS 11%, TICKET 39%."""

    def run():
        per_algo = {"TAS": [], "TTAS": [], "TICKET": []}
        for platform in PAPER_PLATFORMS:
            res = run_figure8(
                topo_cache.machine(platform),
                topo_cache.topology(platform),
                cfg=_CFG,
            )
            for algo in per_algo:
                per_algo[algo].append(res.average_gain(algo))
        return {a: sum(v) / len(v) for a, v in per_algo.items()}

    gains = once(benchmark, run)
    print("\n--- Section 7.1 aggregate (paper: TAS +12%, TTAS +11%, "
          "TICKET +39%) ---")
    for algo, gain in gains.items():
        print(f"  {algo:<7} {gain * 100:+.1f}%")
    benchmark.extra_info["aggregate_gains"] = {
        a: round(g, 3) for a, g in gains.items()
    }
    assert gains["TICKET"] > 0.15
    assert 0.02 < gains["TAS"] < 0.35
    assert gains["TTAS"] > 0.0

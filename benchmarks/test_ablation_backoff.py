"""Ablation: the educated backoff quantum vs hand-tuned constants.

The paper's claim is not just "backoff helps" but that the *right*
quantum — the maximum coherence latency between the involved threads —
is what MCTOP contributes, portably.  This bench compares the educated
quantum against fixed quanta that are too small (misses the window) and
too large (idle periods), across two very different platforms.
Threads are spread with RR_CORE so handovers actually cross sockets.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.apps.locks import (
    ALGORITHMS,
    LockExperimentConfig,
    educated_backoff,
    fixed_backoff,
)
from repro.place import Placement, Policy
from repro.sim import Acquire, Compute, Engine, Release

_CFG = LockExperimentConfig(iterations=80)


def _throughput(machine, mctop, policy, n_threads) -> float:
    placement = Placement(mctop, Policy.RR_CORE, n_threads=n_threads)
    lock = ALGORITHMS["TICKET"](backoff=policy, seed=0)
    engine = Engine(machine)

    def worker():
        for _ in range(_CFG.iterations):
            yield Acquire(lock)
            yield Compute(_CFG.cs_cycles)
            yield Release(lock)
            yield Compute(_CFG.pause_cycles)

    for ctx in placement.ordering:
        engine.spawn(ctx, worker())
    stats = engine.run()
    return n_threads * _CFG.iterations / stats.seconds


@pytest.mark.benchmark(group="ablation backoff")
@pytest.mark.parametrize("platform", ["ivy", "sparc"])
def test_quantum_choice(benchmark, topo_cache, platform):
    machine = topo_cache.machine(platform)
    mctop = topo_cache.topology(platform)
    n_threads = min(32, machine.spec.n_contexts)
    ctxs = Placement(mctop, Policy.RR_CORE, n_threads=n_threads).ordering
    educated = educated_backoff(mctop, ctxs)
    quanta = {
        "tiny (8 cy)": fixed_backoff(8),
        "small (quantum/8)": fixed_backoff(educated.quantum / 8),
        f"mctop ({educated.quantum:.0f} cy)": educated,
        "huge (quantum x8)": fixed_backoff(educated.quantum * 8),
    }

    def run():
        return {
            name: _throughput(machine, mctop, policy, n_threads)
            for name, policy in quanta.items()
        }

    results = once(benchmark, run)
    print(f"\n--- Ablation: TICKET backoff quantum on {platform} "
          f"({n_threads} threads) ---")
    for name, thr in results.items():
        print(f"  {name:<22} {thr / 1e6:8.3f} M crit.sections/s")
    benchmark.extra_info["throughputs"] = {
        k: round(v) for k, v in results.items()
    }

    mctop_key = next(k for k in results if k.startswith("mctop"))
    # The educated quantum beats the extremes.
    assert results[mctop_key] > results["tiny (8 cy)"]
    assert results[mctop_key] > results["huge (quantum x8)"]

"""Figure 7: the MCTOP-PLACE report for CON_HWC with 30 threads on Ivy.

The paper's example output: 15 cores, sockets 20000/20001 with 20/10
contexts and 10/5 cores, ~110 W package power (200 W with DRAM), and a
308-cycle max latency.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.place import Placement, Policy


@pytest.mark.benchmark(group="fig7 placement report")
def test_fig7_con_hwc_30_threads_on_ivy(benchmark, topo_cache):
    mctop = topo_cache.topology("ivy")

    placement = once(
        benchmark,
        lambda: Placement(mctop, Policy.CON_HWC, n_threads=30),
    )
    report = placement.print_stats()
    print("\n--- Figure 7 (mctop_place_print on Ivy) ---")
    print(report)

    assert len(placement.cores_used()) == 15
    counts = sorted(placement.contexts_per_socket().values(), reverse=True)
    assert counts == [20, 10]
    cores = sorted(placement.cores_per_socket().values(), reverse=True)
    assert cores == [10, 5]
    no_dram = sum(placement.max_power(with_dram=False).values())
    with_dram = sum(placement.max_power(with_dram=True).values())
    assert no_dram == pytest.approx(110.1, abs=4.0)
    assert with_dram == pytest.approx(200.6, abs=8.0)
    assert placement.max_latency() == pytest.approx(308, abs=6)
    benchmark.extra_info["power_no_dram"] = no_dram
    benchmark.extra_info["power_with_dram"] = with_dram

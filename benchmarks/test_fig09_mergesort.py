"""Figure 9: sorting 1 GB of integers — gnu vs mctop_sort vs _sse.

Per platform, two groups of stacked bars (16 threads, full machine),
each split into the sequential chunk-sort part and the merging part.
Headline claims: mctop_sort is consistently faster (17% on average),
merging alone ~25% faster, mctop_sort_sse fastest where SIMD exists.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.hardware import PAPER_PLATFORMS
from repro.apps.sort import run_figure9


@pytest.mark.benchmark(group="fig9 mergesort")
@pytest.mark.parametrize("platform", PAPER_PLATFORMS)
def test_fig9_sort_breakdown(benchmark, topo_cache, platform):
    machine = topo_cache.machine(platform)
    mctop = topo_cache.topology(platform)

    result = once(benchmark, lambda: run_figure9(machine, mctop))
    print(f"\n--- Figure 9 ({platform}, 1 GB of integers) ---")
    print(result.table())
    full = machine.spec.n_contexts
    print(
        f"speedup vs gnu: 16 threads {result.speedup(16):.2f}x, "
        f"full machine {result.speedup(full):.2f}x, "
        f"merge-only {result.merge_speedup(full):.2f}x"
    )
    benchmark.extra_info["speedup_16"] = round(result.speedup(16), 3)
    benchmark.extra_info["speedup_full"] = round(result.speedup(full), 3)

    # mctop_sort beats gnu in both groups; at full machine the merging
    # improves more than the total (at 16 threads the sequential part
    # can improve comparably — the NUMA distribution helps it too); SSE
    # is fastest (except SPARC, which has no SIMD bars).
    for n in (16, full):
        assert result.speedup(n) > 1.0
        assert result.merge_speedup(n) > result.speedup(n) * 0.95
        if platform != "sparc":
            sse = result.get("mctop_sse", n)
            assert sse.total_seconds < result.get("mctop", n).total_seconds
    assert result.merge_speedup(full) > result.speedup(full)
    # The sequential part is variant-independent (same first step).
    seq_gnu = result.get("gnu", full).sequential_seconds
    seq_mctop = result.get("mctop", full).sequential_seconds
    assert seq_mctop <= seq_gnu * 1.05


@pytest.mark.benchmark(group="fig9 mergesort")
def test_fig9_average_speedup(benchmark, topo_cache):
    """Paper: mctop_sort 17% faster on average (18% for _sse)."""

    def run():
        speedups, sse_speedups = [], []
        for platform in PAPER_PLATFORMS:
            machine = topo_cache.machine(platform)
            res = run_figure9(machine, topo_cache.topology(platform))
            for n in (16, machine.spec.n_contexts):
                speedups.append(res.speedup(n))
                if platform != "sparc":
                    sse_speedups.append(res.speedup(n, "mctop_sse"))
        return (
            sum(speedups) / len(speedups),
            sum(sse_speedups) / len(sse_speedups),
        )

    avg, avg_sse = once(benchmark, run)
    print(f"\n--- Section 7.2 aggregate (paper: +17% / +18%) ---")
    print(f"  mctop_sort     {avg:.2f}x vs gnu")
    print(f"  mctop_sort_sse {avg_sse:.2f}x vs gnu")
    benchmark.extra_info["avg_speedup"] = round(avg, 3)
    benchmark.extra_info["avg_speedup_sse"] = round(avg_sse, 3)
    assert 1.05 < avg < 1.6
    assert avg_sse > avg

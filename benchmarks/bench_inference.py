#!/usr/bin/env python
"""Cold-inference benchmark across measurement-engine modes.

Thin command-line wrapper around :func:`repro.benchmark.run_bench` —
the same engine behind ``mctop bench``.  Times a full MCTOP-ALG run on
catalog machines in the ``scalar``, ``batched`` and ``jobs`` modes,
verifies the three produce byte-identical topologies, and writes the
``BENCH_3.json`` trajectory document.

Usage::

    PYTHONPATH=src python benchmarks/bench_inference.py
    PYTHONPATH=src python benchmarks/bench_inference.py \
        --machines testbox,ivy --quick
    PYTHONPATH=src python benchmarks/bench_inference.py \
        --machines sparc --jobs 8 --out BENCH_3.json

Exits non-zero when the modes diverge or batched mode fails to beat
scalar, so CI can gate on it directly.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))

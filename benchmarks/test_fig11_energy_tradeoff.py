"""Figure 11: energy-oriented vs performance-oriented placement on Ivy.

The POWER policy deliberately trades performance for energy: the paper
reports, for K-Means, 1.186x the time at 0.774x the energy (1.089x the
energy efficiency).  Our Mean workload shows the same trade; K-Means in
the model scales too well for fewer cores to save energy, which
EXPERIMENTS.md records as a known deviation.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.apps.mapreduce import KMEANS, MEAN, run_figure11


@pytest.mark.benchmark(group="fig11 energy tradeoff")
def test_fig11_power_policy_tradeoff(benchmark, topo_cache):
    machine = topo_cache.machine("ivy")
    mctop = topo_cache.topology("ivy")

    rows = once(
        benchmark, lambda: run_figure11(machine, mctop, (KMEANS, MEAN))
    )
    print("\n--- Figure 11 (Ivy): POWER vs performance placement ---")
    print(f"{'workload':<12} {'rel time':>8} {'rel energy':>10} "
          f"{'rel energy-eff':>14}")
    for row in rows:
        print(
            f"{row.workload:<12} {row.relative_time:>8.3f} "
            f"{row.relative_energy:>10.3f} "
            f"{row.relative_energy_efficiency:>14.3f}"
        )

    by_name = {r.workload: r for r in rows}
    # The POWER placement never costs energy...
    for row in rows:
        assert row.relative_energy <= 1.001
    # ...and on the streaming workload it buys efficiency with time,
    # like the paper's K-Means row (1.186 / 0.774 / 1.089).
    mean_row = by_name["mean"]
    assert mean_row.relative_time > 1.0
    assert mean_row.relative_energy < 0.95
    assert mean_row.relative_energy_efficiency > 1.0
    benchmark.extra_info["mean"] = {
        "rel_time": round(mean_row.relative_time, 3),
        "rel_energy": round(mean_row.relative_energy, 3),
    }

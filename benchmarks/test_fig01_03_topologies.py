"""Figures 1-3: automatically generated MCTOP topology graphs.

Figure 1 is the 8-socket AMD Opteron (intra-socket view + cross-socket
view with the MCM/direct/2-hop latency classes), Figure 2 the 8-socket
Intel Westmere, Figure 3 one socket of the Oracle SPARC T4-4.  Each
benchmark infers the topology and emits the Graphviz DOT sources.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.core.viz import cross_socket_dot, intra_socket_dot


def _regenerate(topo_cache, name):
    mctop = topo_cache.topology(name)
    return mctop, intra_socket_dot(mctop), cross_socket_dot(mctop)


@pytest.mark.benchmark(group="fig1-3 topology graphs")
def test_fig1_opteron_topology(benchmark, topo_cache):
    mctop, intra, cross = once(
        benchmark, lambda: _regenerate(topo_cache, "opteron")
    )
    print("\n--- Figure 1a (Opteron, intra-socket) ---")
    print(intra)
    print("--- Figure 1b (Opteron, cross-socket) ---")
    print(cross)
    # Paper: intra 117 cycles; cross classes 197 / 217 / 300 (2 hops).
    assert "117 cycles" in intra or "116 cycles" in intra or "118 cycles" in intra
    cross_lats = sorted({l.latency for l in mctop.links.values()})
    assert len(cross_lats) == 3
    assert abs(cross_lats[0] - 197) <= 4
    assert abs(cross_lats[1] - 217) <= 4
    assert abs(cross_lats[2] - 300) <= 4
    assert "2 hops" in cross
    benchmark.extra_info["cross_latency_classes"] = cross_lats


@pytest.mark.benchmark(group="fig1-3 topology graphs")
def test_fig2_westmere_topology(benchmark, topo_cache):
    mctop, intra, cross = once(
        benchmark, lambda: _regenerate(topo_cache, "westmere")
    )
    print("\n--- Figure 2a (Westmere, intra-socket) ---")
    print(intra)
    print("--- Figure 2b (Westmere, cross-socket) ---")
    print(cross)
    # Paper: SMT 28, intra 116, cross 341, lvl-4 458 (2 hops).
    assert abs(mctop.smt_latency() - 28) <= 2
    direct = {l.latency for l in mctop.links.values() if l.n_hops == 1}
    routed = {l.latency for l in mctop.links.values() if l.n_hops == 2}
    assert all(abs(v - 341) <= 5 for v in direct)
    assert all(abs(v - 458) <= 5 for v in routed)
    assert "2 hops" in cross
    # Local memory figures: 369 cy / 13.1 GB/s (Figure 2a).
    s0 = mctop.socket_ids()[0]
    assert mctop.local_mem_latency(s0) == pytest.approx(369, abs=8)
    assert mctop.local_bandwidth(s0) == pytest.approx(13.1, rel=0.05)


@pytest.mark.benchmark(group="fig1-3 topology graphs")
def test_fig3_sparc_topology(benchmark, topo_cache):
    mctop, intra, cross = once(
        benchmark, lambda: _regenerate(topo_cache, "sparc")
    )
    print("\n--- Figure 3 (SPARC T4-4 socket) ---")
    print(intra)
    # Paper: 8 cores x 8 contexts per socket; intra 207 cycles; local
    # node 479 cy / 28.2 GB/s.
    assert mctop.smt_per_core == 8
    assert len(mctop.socket_get_cores(mctop.socket_ids()[0])) == 8
    s0 = mctop.socket_ids()[0]
    assert mctop.groups[s0].latency == pytest.approx(207, abs=8)
    assert mctop.local_mem_latency(s0) == pytest.approx(479, abs=10)
    assert mctop.local_bandwidth(s0) == pytest.approx(28.2, rel=0.05)

#!/usr/bin/env python3
"""Topology-aware mergesort (Section 7.2).

Two parts:

1. a *functional* demonstration — sort a real array with
   ``mctop_sort`` (including the SIMD bitonic merge network) and check
   it against numpy;
2. the Figure 9 *performance* experiment — replay the 1 GB sort's
   execution plan on the simulated machine and print the breakdown.

Run with::

    python examples/numa_mergesort.py [machine]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import get_machine
from repro.core.algorithm import InferenceConfig, LatencyTableConfig, infer_topology
from repro.apps.sort import (
    build_reduction_tree,
    mctop_sort,
    mctop_sort_sse,
    run_figure9,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "opteron"
    machine = get_machine(name)
    mctop = infer_topology(
        machine,
        seed=1,
        config=InferenceConfig(table=LatencyTableConfig(repetitions=31)),
    )

    # --- Functional: really sort data through the topology-aware tree.
    rng = np.random.default_rng(7)
    data = rng.integers(-10**9, 10**9, 100_000)
    result = mctop_sort(data, mctop, n_threads=16)
    assert (result == np.sort(data)).all()
    result_sse = mctop_sort_sse(data, mctop, n_threads=16)
    assert (result_sse == np.sort(data)).all()
    print(f"functional check: 100k integers sorted correctly "
          f"(scalar + SIMD merge) on {name}")

    # --- The merge tree the sort uses.
    tree = build_reduction_tree(mctop)
    print(f"\ncross-socket reduction tree ({tree.depth} rounds, "
          f"target socket {tree.target}):")
    for i, round_steps in enumerate(tree.rounds):
        pairs = ", ".join(
            f"{s.src}->{s.dst}"
            + (f" ({s.bandwidth:.1f} GB/s)" if s.bandwidth else "")
            for s in round_steps
        )
        print(f"  round {i}: {pairs}")

    # --- Performance: the Figure 9 experiment.
    print(f"\nFigure 9 on {name} (1 GB of integers):")
    result = run_figure9(machine, mctop)
    print(result.table())
    full = machine.spec.n_contexts
    print(f"\nmctop_sort speedup vs gnu: {result.speedup(full):.2f}x "
          f"(merging alone: {result.merge_speedup(full):.2f}x)")


if __name__ == "__main__":
    main()

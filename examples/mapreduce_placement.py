#!/usr/bin/env python3
"""MapReduce with MCTOP-PLACE (Section 7.3).

Runs real MapReduce jobs (word count, k-means, matrix multiply) on the
Metis-style engine under different placement policies — the results are
placement-invariant, the performance is not — then reproduces the
Figure 10 comparison against default sequential pinning.

Run with::

    python examples/mapreduce_placement.py [machine]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import get_machine
from repro.core.algorithm import InferenceConfig, LatencyTableConfig, infer_topology
from repro.apps.mapreduce import (
    MetisEngine,
    kmeans_data,
    kmeans_job,
    run_figure10,
    word_count_data,
    word_count_job,
)
from repro.place import Policy


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "opteron"
    machine = get_machine(name)
    mctop = infer_topology(
        machine,
        seed=1,
        config=InferenceConfig(table=LatencyTableConfig(repetitions=31)),
    )

    # --- Functional: real jobs, three policies, identical results.
    lines = word_count_data(n_lines=400, seed=1)
    counts = {}
    for policy in (Policy.SEQUENTIAL, Policy.RR_HWC, Policy.CON_CORE):
        engine = MetisEngine(mctop, policy, n_workers=min(8, mctop.n_contexts))
        counts[policy] = engine.run(word_count_job(), lines)
    assert counts[Policy.SEQUENTIAL] == counts[Policy.RR_HWC]
    top = sorted(counts[Policy.RR_HWC].items(), key=lambda kv: -kv[1])[:5]
    print("word count (top 5, identical under every policy):")
    for word, n in top:
        print(f"  {word:<8} {n}")

    points, centroids = kmeans_data(n_points=500, seed=2)
    engine = MetisEngine(mctop, Policy.CON_CORE_HWC, n_workers=min(8, mctop.n_contexts))
    clusters = engine.run(kmeans_job(centroids), points)
    print(f"\nk-means: {len(clusters)} clusters, centroid norms "
          + ", ".join(f"{np.linalg.norm(c):.1f}" for c in clusters.values()))

    # --- Performance: the Figure 10 experiment on this platform.
    print(f"\nFigure 10 on {name} "
          "(MCTOP-placed Metis vs default sequential pinning):")
    result = run_figure10(machine, mctop)
    print(result.table())
    print(f"average relative time: {result.average_relative_time():.2f}")
    energy = result.average_relative_energy()
    if energy is not None:
        print(f"average relative energy: {energy:.2f}")


if __name__ == "__main__":
    main()

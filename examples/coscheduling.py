#!/usr/bin/env python3
"""Centralized scheduling with MCTOP (the paper's Future Work, Sec 9).

Three applications with different resource profiles arrive on one
machine; the MCTOP scheduler assigns them disjoint contexts with
class-appropriate shapes and tracks the *effective* topology — the
bandwidth remaining after the running applications' reservations.

Run with::

    python examples/coscheduling.py [machine]
"""

from __future__ import annotations

import sys

from repro import get_machine
from repro.core.algorithm import InferenceConfig, LatencyTableConfig, infer_topology
from repro.sched import AppRequest, MctopScheduler, WorkloadClass


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "haswell"
    machine = get_machine(name)
    mctop = infer_topology(
        machine,
        seed=1,
        config=InferenceConfig(table=LatencyTableConfig(repetitions=31)),
    )
    sched = MctopScheduler(mctop)
    quarter = max(2, mctop.n_contexts // 4)

    apps = [
        AppRequest("db-engine", quarter, WorkloadClass.LATENCY),
        AppRequest("stream-etl", quarter, WorkloadClass.BANDWIDTH,
                   bandwidth_demand=0.6 * mctop.local_bandwidth(
                       mctop.socket_ids()[0])),
        AppRequest("ml-training", quarter, WorkloadClass.COMPUTE),
    ]
    for request in apps:
        assignment = sched.schedule(request)
        print(f"{request.name:<12} [{request.workload.value:<9}] -> "
              f"{len(assignment.ctxs)} ctxs on sockets "
              f"{list(assignment.sockets)}")
        print(f"             {assignment.rationale}")

    print()
    print(sched.report())
    print(f"\nutilization: {sched.utilization() * 100:.0f}%")

    # Effective topology in action: finish the streaming app and watch
    # the bandwidth come back.
    etl = next(a for a in sched.running_apps() if a.name == "stream-etl")
    s0 = mctop.socket_ids()[0]
    before = sched.effective_bandwidth(s0)
    sched.finish(etl.app_id)
    after = sched.effective_bandwidth(s0)
    print(f"\nafter finishing stream-etl, socket {s0} effective bandwidth "
          f"{before:.1f} -> {after:.1f} GB/s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Topology tour: infer every paper platform and export its graphs.

Reproduces the workflow behind Figures 1-3: run MCTOP-ALG on each of
the five evaluation machines, print a summary plus the latency levels,
and write the Graphviz DOT files (render them with ``dot -Tpng`` if
graphviz is installed — the library itself only emits text).

Run with::

    python examples/topology_tour.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import PAPER_PLATFORMS, get_machine
from repro.core.algorithm import InferenceConfig, LatencyTableConfig, infer_topology
from repro.core.viz import cross_socket_dot, intra_socket_dot, topology_ascii

#: the small platforms are instant; westmere/sparc take ~half a minute
FAST = InferenceConfig(table=LatencyTableConfig(repetitions=31))


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "topology-graphs")
    out_dir.mkdir(exist_ok=True)

    for name in PAPER_PLATFORMS:
        machine = get_machine(name)
        print(f"=== {machine.describe()}")
        mctop = infer_topology(machine, seed=1, config=FAST)
        for level, latency in mctop.latency_levels():
            role = mctop.levels[level].role
            print(f"    level {level}: {latency:>4} cycles ({role})")
        print(topology_ascii(mctop).split("\n", 1)[0])

        intra = out_dir / f"{name}-intra.dot"
        cross = out_dir / f"{name}-cross.dot"
        intra.write_text(intra_socket_dot(mctop))
        cross.write_text(cross_socket_dot(mctop))
        print(f"    wrote {intra} and {cross}\n")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Educated lock backoffs (the Section 7.1 experiment, one platform).

Compares TAS / TTAS / TICKET spinlocks with and without the
MCTOP-educated backoff (quantum = max coherence latency among the
competing threads) across a thread sweep, printing the relative
throughput like Figure 8's curves.

Run with::

    python examples/lock_backoff.py [machine]
"""

from __future__ import annotations

import sys

from repro import get_machine
from repro.core.algorithm import InferenceConfig, LatencyTableConfig, infer_topology
from repro.apps.locks import (
    LockExperimentConfig,
    educated_backoff,
    run_figure8,
)
from repro.place import Placement, Policy


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ivy"
    machine = get_machine(name)
    mctop = infer_topology(
        machine,
        seed=1,
        config=InferenceConfig(table=LatencyTableConfig(repetitions=31)),
    )

    # What quantum does the policy produce here?
    all_ctxs = Placement(mctop, Policy.SEQUENTIAL).ordering
    policy = educated_backoff(mctop, all_ctxs)
    print(f"{name}: educated backoff quantum = {policy.quantum:.0f} cycles "
          f"(the max coherence latency between any two threads)\n")

    counts = [c for c in (2, 8, 16, 32, 64, 128, machine.spec.n_contexts)
              if c <= machine.spec.n_contexts]
    result = run_figure8(
        machine, mctop,
        thread_counts=sorted(set(counts)),
        cfg=LockExperimentConfig(iterations=80),
    )
    print(result.table())
    print()
    for algo in ("TAS", "TTAS", "TICKET"):
        gain = result.average_gain(algo)
        print(f"{algo:<7} average gain with MCTOP backoff: {gain * 100:+.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""MCTOP_MP: runtime placement policies for OpenMP (Section 7.4).

Demonstrates the ``omp_set_binding_policy`` extension — switching the
placement policy *between* parallel regions, which vanilla OpenMP's
environment-variable places cannot do — on real graph kernels, then
reproduces the Figure 12 comparison.

Run with::

    python examples/openmp_policies.py [machine]
"""

from __future__ import annotations

import sys

from repro import get_machine
from repro.core.algorithm import InferenceConfig, LatencyTableConfig, infer_topology
from repro.apps.openmp import (
    GraphScale,
    OpenMpRuntime,
    pagerank,
    potential_friends,
    powerlaw_graph,
    run_figure12,
)
from repro.place import Policy


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "haswell"
    machine = get_machine(name)
    mctop = infer_topology(
        machine,
        seed=1,
        config=InferenceConfig(table=LatencyTableConfig(repetitions=31)),
    )

    # --- The runtime API: per-region policies (the Combination case).
    runtime = OpenMpRuntime(mctop)
    graph = powerlaw_graph(n_nodes=2_000, avg_degree=8, seed=3)

    n_team = min(16, mctop.n_contexts)
    runtime.omp_set_binding_policy(Policy.BALANCE_CORE_HWC, n_threads=n_team)
    team = runtime.current_team(graph.n_nodes)
    sockets = {mctop.socket_of_context(m.ctx) for m in team}
    ranks = pagerank(graph, iterations=8)
    print(f"region 1: PageRank under BALANCE_CORE_HWC "
          f"({len(team)} threads over {len(sockets)} sockets); "
          f"top rank {ranks.max():.2e}")

    runtime.omp_set_binding_policy(Policy.CON_CORE_HWC, n_threads=n_team)
    team = runtime.current_team(graph.n_nodes)
    sockets = {mctop.socket_of_context(m.ctx) for m in team}
    suggestions = potential_friends(graph, max_candidates=3)
    n_sugg = sum(len(v) for v in suggestions.values())
    print(f"region 2: Potential Friends under CON_CORE_HWC "
          f"({len(team)} threads over {len(sockets)} sockets); "
          f"{n_sugg} suggestions")
    print("-> one program, two policies: impossible with static "
          "OMP_PLACES\n")

    # --- Performance: Figure 12 on this platform (paper-scale graphs).
    print(f"Figure 12 on {name} (100M nodes / 800M edges):")
    result = run_figure12(machine, mctop, scale=GraphScale.paper())
    print(result.table())
    print(f"average relative time: {result.average_relative_time():.2f} "
          "(lower is better; paper average 0.78)")


if __name__ == "__main__":
    main()

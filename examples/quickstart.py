#!/usr/bin/env python3
"""Quickstart: infer a topology, query it, place threads.

Runs MCTOP-ALG against the simulated 2-socket Ivy Bridge, prints the
inferred topology and a few of the portable queries every policy in the
paper is built from, then computes a thread placement.

Run with::

    python examples/quickstart.py [machine]
"""

from __future__ import annotations

import sys

from repro import get_machine, infer, save_mctop
from repro.core.algorithm import InferenceReport
from repro.place import Placement, Policy


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ivy"
    machine = get_machine(name)
    print(f"machine      : {machine.describe()}")

    # --- Step 1: run MCTOP-ALG (latency table -> clusters -> topology).
    print("\nrunning MCTOP-ALG (latency measurements only)...")
    report = InferenceReport()
    mctop = infer(machine, seed=1, repetitions=41, report=report)
    print(mctop.summary())
    print(f"samples taken: {report.samples_taken}")
    print(report.os_comparison.report())

    # --- Step 2: the portable queries of Section 2.
    ctx = mctop.context_ids()[0]
    print(f"\nmctop_get_local_node({ctx})  = {mctop.get_local_node(ctx)}")
    s0 = mctop.socket_ids()[0]
    print(f"mctop_socket_get_cores({s0}) has "
          f"{len(mctop.socket_get_cores(s0))} cores")
    print(f"mctop_get_latency(0, 1)      = {mctop.get_latency(0, 1)} cycles")
    if mctop.n_sockets > 1:
        a, b = mctop.min_latency_socket_pair()
        print(f"best-connected socket pair   = ({a}, {b}), "
              f"{mctop.socket_latency(a, b)} cycles")
    print(f"backoff quantum (max latency)= "
          f"{mctop.max_latency(mctop.context_ids())} cycles")

    # --- Step 3: place threads with a high-level policy.
    n = max(2, mctop.n_contexts // 2)
    placement = Placement(mctop, Policy.CON_CORE_HWC, n_threads=n)
    print(f"\n{placement.print_stats()}")

    # --- Step 4: store the description file for later runs.
    path = save_mctop(mctop, f"{name}.mct")
    print(f"\ndescription file written to {path} "
          f"(reload with repro.load_mctop)")


if __name__ == "__main__":
    main()
